// Package simtime provides the virtual time base shared by the ASIC model,
// the control plane, and the flow-level simulator.
//
// All components in this repository are clock-agnostic: they never read the
// wall clock. Instead every time-dependent operation takes an explicit
// simtime.Time, which the simulator (or a real-time driver such as
// cmd/silkroadd) advances. This makes every experiment deterministic and
// repeatable.
package simtime

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. The zero value is the simulation epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Minutes returns the duration as a floating-point number of minutes.
func (d Duration) Minutes() float64 { return float64(d) / float64(Minute) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3gms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3gus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// String formats the time as seconds since the epoch.
func (t Time) String() string { return fmt.Sprintf("t=%.6fs", float64(t)/float64(Second)) }
