package simtime

import "testing"

func TestArithmetic(t *testing.T) {
	base := Time(1000)
	if got := base.Add(Microsecond); got != Time(2000) {
		t.Fatalf("Add = %v", got)
	}
	if got := Time(5000).Sub(Time(2000)); got != Duration(3000) {
		t.Fatalf("Sub = %v", got)
	}
	if !Time(1).Before(Time(2)) || Time(1).After(Time(2)) {
		t.Fatal("ordering wrong")
	}
	if Time(2).Before(Time(2)) || Time(2).After(Time(2)) {
		t.Fatal("equality not strict")
	}
}

func TestUnitConversions(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit ladder broken")
	}
	if Minute != 60*Second || Hour != 60*Minute {
		t.Fatal("coarse units broken")
	}
	if got := Duration(90 * Second).Minutes(); got != 1.5 {
		t.Fatalf("Minutes = %v", got)
	}
	if got := Duration(250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{Duration(2 * Second), "2s"},
		{Duration(3 * Millisecond), "3ms"},
		{Duration(7 * Microsecond), "7us"},
		{Duration(42), "42ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
	if Time(1500000000).String() != "t=1.500000s" {
		t.Fatalf("Time.String = %q", Time(1500000000).String())
	}
}
