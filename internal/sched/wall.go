package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Wall-driver tuning. The driver trades a bounded amount of latency for
// not spinning: a Poke that races the driver going idle is noticed no
// later than idlePoll.
const (
	// minSleep is the shortest nap between scheduler passes; deadlines
	// closer than this are coalesced into one pass.
	minSleep = 100 * time.Microsecond
	// idlePoll bounds how long the driver sleeps with no deadline queued
	// (or after a lost Poke race).
	idlePoll = 250 * time.Millisecond
	// pokeThreshold is the sleep length above which the driver marks
	// itself idle so Poke wakes it early; shorter naps end soon enough on
	// their own.
	pokeThreshold = 5 * time.Millisecond
)

// WallDriver executes a Scheduler against real time: it sleeps until the
// scheduler's next deadline maps onto the wall clock, then runs everything
// due. All scheduler access happens with the configured locker held, so a
// data path sharing that lock can keep mutating scheduler-visible state
// (installing connections, scheduling aging) while the driver runs.
type WallDriver struct {
	clock Clock
	sched *Scheduler
	mu    sync.Locker

	wake    chan struct{}
	idle    atomic.Bool
	running atomic.Bool
}

// NewWallDriver builds a driver for sched. Deadlines are read from clock;
// every scheduler access takes mu (pass the lock that guards the
// scheduler's other users, or nil for a private lock).
func NewWallDriver(clock Clock, sched *Scheduler, mu sync.Locker) *WallDriver {
	if clock == nil {
		clock = NewWallClock()
	}
	if mu == nil {
		mu = &sync.Mutex{}
	}
	return &WallDriver{
		clock: clock,
		sched: sched,
		mu:    mu,
		wake:  make(chan struct{}, 1),
	}
}

// Poke nudges the driver to re-read the scheduler's next deadline. Call it
// after scheduling new work from outside the driver (e.g. a packet miss
// queued a learning-filter flush earlier than the driver planned to wake).
// It is cheap, non-blocking, and safe from any goroutine; when the driver
// is mid-pass or about to wake anyway it is a no-op.
func (d *WallDriver) Poke() {
	if !d.idle.Load() {
		return
	}
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Run executes the scheduler against the wall clock until ctx is
// cancelled, then performs one final catch-up pass (so shutdown observes
// all work due at the instant of cancellation) and returns nil. Only one
// Run may be active per driver.
func (d *WallDriver) Run(ctx context.Context) error {
	if !d.running.CompareAndSwap(false, true) {
		panic("sched: WallDriver.Run called twice")
	}
	defer d.running.Store(false)

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	for {
		d.mu.Lock()
		d.sched.RunUntil(d.clock.Now())
		next, ok := d.sched.Next()
		d.mu.Unlock()

		var delay time.Duration
		if ok {
			delay = time.Duration(next.Sub(d.clock.Now()))
			if delay < minSleep {
				delay = minSleep
			}
		} else {
			delay = idlePoll
		}
		// Mark idle before arming the timer: a Poke arriving after this
		// store is guaranteed to either see idle and signal wake, or race
		// the flag and cost at most idlePoll of extra latency.
		d.idle.Store(delay >= pokeThreshold)
		timer.Reset(delay)

		select {
		case <-ctx.Done():
			d.idle.Store(false)
			if !timer.Stop() {
				<-timer.C
			}
			d.mu.Lock()
			d.sched.RunUntil(d.clock.Now())
			d.mu.Unlock()
			return nil
		case <-timer.C:
		case <-d.wake:
			if !timer.Stop() {
				<-timer.C
			}
		}
		d.idle.Store(false)
	}
}
