// Package sched is the unified event runtime behind every timed behaviour
// in this repository: pending-connection windows, learning-filter drains,
// rate-limited CPU insertions, 3-step PCC update transitions, timewheel
// aging and health probing all execute through one Scheduler.
//
// The Scheduler owns two kinds of work:
//
//   - Timers: one-shot (At) and periodic (Every) callbacks ordered by
//     (time, scheduling sequence), so simultaneous events fire in FIFO
//     order — the property that keeps seeded simulations bit-reproducible.
//   - Sources: components that already track their own deadlines behind an
//     Advance(now)/NextEventTime() pair (a control plane, a health
//     checker, a whole multi-pipe switch). The scheduler interleaves their
//     background work with timers in strict time order.
//
// Two drivers execute a scheduler's work:
//
//   - The virtual-time driver (Run/RunUntil) is the discrete-event loop the
//     flow simulator and the examples run on: time jumps instantly from
//     event to event and nothing reads the wall clock, so every run
//     replays identically.
//   - The wall-clock driver (WallDriver) maps simtime onto monotonic real
//     time so a live process (cmd/silkroadd) executes the same work
//     autonomously, with no manual Advance calls.
//
// The scheduler itself is not safe for concurrent use; the wall-clock
// driver serializes access through the locker it is built with.
package sched

import (
	"fmt"

	"repro/internal/simtime"
)

// Source is a component with self-managed deadlines. Advance(t) must
// retire all work due at or before t: a source that still reports a
// NextEventTime at or before t after being advanced to t would spin the
// drivers forever.
type Source interface {
	// NextEventTime returns the earliest time the source has work due, and
	// whether any work is scheduled.
	NextEventTime() (simtime.Time, bool)
	// Advance runs all of the source's work due at or before now.
	Advance(now simtime.Time)
}

// Task is a handle to a scheduled timer. Stopping it prevents any further
// firings; a stop is permanent.
type Task struct {
	stopped bool
}

// Stop cancels the task. It is safe to call from inside the task's own
// callback (a periodic task then does not reschedule) and safe to call
// more than once.
func (t *Task) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Task) Stopped() bool { return t.stopped }

// timer is one heap entry. Cancellation is lazy: stopped entries stay in
// the heap and are discarded when they surface.
type timer struct {
	at     simtime.Time
	seq    uint64
	period simtime.Duration // 0 = one-shot
	fn     func(now simtime.Time)
	task   *Task
}

// Scheduler is a single event queue: a timer min-heap plus registered
// due-work sources. The zero value is not usable; call New.
type Scheduler struct {
	timers  []timer
	seq     uint64
	sources []Source
	now     simtime.Time
}

// New creates an empty scheduler anchored at the simulation epoch.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the scheduler's high-water mark: the latest instant work has
// been executed at.
func (s *Scheduler) Now() simtime.Time { return s.now }

// Len returns the number of live (non-stopped) pending timers.
func (s *Scheduler) Len() int {
	n := 0
	for i := range s.timers {
		if !s.timers[i].task.stopped {
			n++
		}
	}
	return n
}

// AddSource registers a due-work source. Sources registered earlier win
// ties when several have work due at the same instant.
func (s *Scheduler) AddSource(src Source) {
	if src == nil {
		panic("sched: nil source")
	}
	s.sources = append(s.sources, src)
}

// At schedules fn to run once at the given instant. Instants at or before
// the current high-water mark fire on the next driver step. The returned
// task cancels the timer when stopped.
func (s *Scheduler) At(at simtime.Time, fn func(now simtime.Time)) *Task {
	return s.push(at, 0, fn)
}

// After schedules fn to run once d after the scheduler's current time.
func (s *Scheduler) After(d simtime.Duration, fn func(now simtime.Time)) *Task {
	return s.push(s.now.Add(d), 0, fn)
}

// Every schedules fn to run at first and then every period after its
// previous firing. Stop the returned task to cancel.
func (s *Scheduler) Every(first simtime.Time, period simtime.Duration, fn func(now simtime.Time)) *Task {
	if period <= 0 {
		panic(fmt.Sprintf("sched: non-positive period %v", period))
	}
	return s.push(first, period, fn)
}

func (s *Scheduler) push(at simtime.Time, period simtime.Duration, fn func(now simtime.Time)) *Task {
	if fn == nil {
		panic("sched: nil callback")
	}
	t := &Task{}
	s.pushTimer(timer{at: at, period: period, fn: fn, task: t})
	return t
}

// Next returns the earliest instant at which the scheduler has work due —
// the minimum over live timers and source deadlines — and whether any work
// is scheduled at all.
func (s *Scheduler) Next() (simtime.Time, bool) {
	s.pruneStopped()
	var best simtime.Time
	have := false
	if len(s.timers) > 0 {
		best, have = s.timers[0].at, true
	}
	if bt, _, ok := s.earliestSource(); ok && (!have || bt.Before(best)) {
		best, have = bt, true
	}
	return best, have
}

// earliestSource returns the source with the soonest deadline (first
// registered wins ties).
func (s *Scheduler) earliestSource() (simtime.Time, Source, bool) {
	var (
		best simtime.Time
		src  Source
	)
	for _, c := range s.sources {
		if at, ok := c.NextEventTime(); ok && (src == nil || at.Before(best)) {
			best, src = at, c
		}
	}
	return best, src, src != nil
}

// pruneStopped discards cancelled timers sitting at the heap head so peeks
// see a live deadline.
func (s *Scheduler) pruneStopped() {
	for len(s.timers) > 0 && s.timers[0].task.stopped {
		s.popTimer()
	}
}

// RunUntil executes all work due at or before now — source work and timer
// callbacks interleaved in strict time order, sources winning ties — and
// advances the high-water mark to now. It is the "catch up to this
// instant" primitive: the control plane's legacy Advance method and the
// wall-clock driver are both built on it.
func (s *Scheduler) RunUntil(now simtime.Time) {
	for {
		s.pruneStopped()
		bt, src, okSrc := s.earliestSource()
		srcDue := okSrc && !bt.After(now)
		timDue := len(s.timers) > 0 && !s.timers[0].at.After(now)
		switch {
		case srcDue && (!timDue || !bt.After(s.timers[0].at)):
			src.Advance(bt)
		case timDue:
			s.fire(s.popTimer())
		default:
			if now.After(s.now) {
				s.now = now
			}
			return
		}
	}
}

// Run is the virtual-time driver: it executes timer events in (time, seq)
// order until the heap empties or the next timer lies beyond until,
// interleaving source background work exactly as a discrete-event
// simulation demands — all source work scheduled before the next timer
// runs first, and every source is advanced to the timer's instant before
// its callback executes. A timer beyond until is left unexecuted and the
// loop stops (flush work due exactly at the horizon by scheduling it at
// until).
func (s *Scheduler) Run(until simtime.Time) {
	for {
		s.pruneStopped()
		if len(s.timers) == 0 {
			return
		}
		// Drain source work scheduled before the next timer fires.
		for {
			bt, src, ok := s.earliestSource()
			if !ok || len(s.timers) == 0 || bt.After(s.timers[0].at) {
				break
			}
			src.Advance(bt)
		}
		s.pruneStopped()
		if len(s.timers) == 0 {
			return
		}
		tm := s.popTimer()
		if tm.at.After(until) {
			return
		}
		for _, src := range s.sources {
			src.Advance(tm.at)
		}
		s.fire(tm)
	}
}

// fire executes one timer callback and reschedules periodic tasks.
func (s *Scheduler) fire(tm timer) {
	if tm.task.stopped {
		return
	}
	if tm.at.After(s.now) {
		s.now = tm.at
	}
	tm.fn(tm.at)
	if tm.period > 0 && !tm.task.stopped {
		s.pushTimer(timer{at: tm.at.Add(tm.period), period: tm.period, fn: tm.fn, task: tm.task})
	}
}

// --- timer min-heap, ordered by (at, seq) ----------------------------------
//
// Hand-rolled instead of container/heap so pushes and pops stay free of
// interface boxing on the simulator's hottest control path.

func (s *Scheduler) pushTimer(tm timer) {
	tm.seq = s.seq
	s.seq++
	s.timers = append(s.timers, tm)
	s.siftUp(len(s.timers) - 1)
}

func (s *Scheduler) popTimer() timer {
	top := s.timers[0]
	n := len(s.timers) - 1
	s.timers[0] = s.timers[n]
	s.timers[n] = timer{} // release fn/task references
	s.timers = s.timers[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return top
}

func (s *Scheduler) less(i, j int) bool {
	if s.timers[i].at != s.timers[j].at {
		return s.timers[i].at < s.timers[j].at
	}
	return s.timers[i].seq < s.timers[j].seq
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.timers[i], s.timers[parent] = s.timers[parent], s.timers[i]
		i = parent
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.timers)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		s.timers[i], s.timers[min] = s.timers[min], s.timers[i]
		i = min
	}
}
