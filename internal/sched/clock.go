package sched

import (
	"sync/atomic"
	"time"

	"repro/internal/simtime"
)

// Clock maps the outside world onto the simulation timeline. The
// wall-clock driver polls it to decide how far to run the scheduler; tests
// substitute a ManualClock to step time by hand.
type Clock interface {
	Now() simtime.Time
}

// WallClock anchors simtime at its creation instant and advances it with
// the process's monotonic clock, so simtime.Time 0 is "process start" and
// readings never jump backwards on NTP adjustments.
type WallClock struct {
	anchor time.Time
}

// NewWallClock returns a clock anchored at the current instant.
func NewWallClock() *WallClock {
	return &WallClock{anchor: time.Now()}
}

// Now returns the monotonic time elapsed since the anchor.
func (c *WallClock) Now() simtime.Time {
	return simtime.Time(time.Since(c.anchor).Nanoseconds())
}

// ManualClock is a hand-stepped Clock for tests. It is safe for
// concurrent use; readings are monotonic (Set to an earlier time is
// ignored).
type ManualClock struct {
	t atomic.Int64
}

// NewManualClock returns a manual clock reading start.
func NewManualClock(start simtime.Time) *ManualClock {
	c := &ManualClock{}
	c.t.Store(int64(start))
	return c
}

// Now returns the clock's current reading.
func (c *ManualClock) Now() simtime.Time { return simtime.Time(c.t.Load()) }

// Set moves the clock forward to t; earlier instants are ignored.
func (c *ManualClock) Set(t simtime.Time) {
	for {
		cur := c.t.Load()
		if int64(t) <= cur {
			return
		}
		if c.t.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d simtime.Duration) {
	if d > 0 {
		c.t.Add(int64(d))
	}
}
