package sched

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
)

func ms(n int64) simtime.Time { return simtime.Time(n * int64(simtime.Millisecond)) }

// TestTimerFIFOOrder verifies the (time, seq) heap order: events at the
// same instant fire in scheduling order — the determinism property the
// simulator's golden files depend on.
func TestTimerFIFOOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(ms(5), func(simtime.Time) { got = append(got, i) })
	}
	s.At(ms(1), func(simtime.Time) { got = append(got, -1) })
	s.RunUntil(ms(5))
	want := []int{-1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != ms(5) {
		t.Fatalf("Now=%v, want %v", s.Now(), ms(5))
	}
}

// TestEveryAndStop covers periodic firing, cancellation from outside and
// from inside the callback, and that Len ignores stopped timers.
func TestEveryAndStop(t *testing.T) {
	s := New()
	var ticks []simtime.Time
	task := s.Every(ms(10), 10*simtime.Millisecond, func(now simtime.Time) {
		ticks = append(ticks, now)
	})
	s.RunUntil(ms(35))
	if len(ticks) != 3 || ticks[2] != ms(30) {
		t.Fatalf("ticks=%v, want firings at 10,20,30ms", ticks)
	}
	task.Stop()
	s.RunUntil(ms(100))
	if len(ticks) != 3 {
		t.Fatalf("stopped task fired again: %v", ticks)
	}
	if s.Len() != 0 {
		t.Fatalf("Len=%d after stop, want 0", s.Len())
	}

	// Self-stop: a periodic task that cancels itself does not reschedule.
	n := 0
	var self *Task
	self = s.Every(ms(110), 10*simtime.Millisecond, func(simtime.Time) {
		n++
		if n == 2 {
			self.Stop()
		}
	})
	s.RunUntil(ms(500))
	if n != 2 {
		t.Fatalf("self-stopping task fired %d times, want 2", n)
	}
}

// recordingSource is a Source with a scripted deadline list.
type recordingSource struct {
	deadlines []simtime.Time // ascending; consumed as advanced past
	advances  []simtime.Time
}

func (r *recordingSource) NextEventTime() (simtime.Time, bool) {
	if len(r.deadlines) == 0 {
		return 0, false
	}
	return r.deadlines[0], true
}

func (r *recordingSource) Advance(now simtime.Time) {
	r.advances = append(r.advances, now)
	for len(r.deadlines) > 0 && !r.deadlines[0].After(now) {
		r.deadlines = r.deadlines[1:]
	}
}

// TestRunInterleavesSources mirrors the old flowsim loop semantics: before
// a timer fires, the source is advanced to each of its earlier deadlines
// in turn, then advanced to the timer's own instant.
func TestRunInterleavesSources(t *testing.T) {
	s := New()
	src := &recordingSource{deadlines: []simtime.Time{ms(3), ms(7), ms(12)}}
	s.AddSource(src)
	var fired []simtime.Time
	s.At(ms(10), func(now simtime.Time) { fired = append(fired, now) })
	s.Run(ms(100))

	if len(fired) != 1 || fired[0] != ms(10) {
		t.Fatalf("fired=%v, want [10ms]", fired)
	}
	// Source advanced at its own deadlines 3ms and 7ms, then to the timer
	// instant 10ms. The 12ms deadline is beyond the last timer: the loop
	// ends when the heap empties, leaving it pending.
	want := []simtime.Time{ms(3), ms(7), ms(10)}
	if len(src.advances) != len(want) {
		t.Fatalf("advances=%v, want %v", src.advances, want)
	}
	for i := range want {
		if src.advances[i] != want[i] {
			t.Fatalf("advances=%v, want %v", src.advances, want)
		}
	}
	if next, ok := s.Next(); !ok || next != ms(12) {
		t.Fatalf("Next=%v,%v, want 12ms pending from source", next, ok)
	}
}

// TestRunHorizon verifies a timer beyond the horizon is not executed and
// that RunUntil ties go to the source.
func TestRunHorizon(t *testing.T) {
	s := New()
	fired := false
	s.At(ms(10), func(simtime.Time) { fired = true })
	s.Run(ms(9))
	if fired {
		t.Fatal("timer beyond horizon fired")
	}

	// Tie at 5ms: RunUntil runs the source before the timer.
	s2 := New()
	var order []string
	src := &recordingSource{deadlines: []simtime.Time{ms(5)}}
	s2.AddSource(src)
	s2.At(ms(5), func(simtime.Time) { order = append(order, "timer") })
	s2.RunUntil(ms(5))
	if len(src.advances) != 1 || len(order) != 1 {
		t.Fatalf("advances=%v order=%v", src.advances, order)
	}
}

// TestNextMergesTimersAndSources checks Next over both kinds of work.
func TestNextMergesTimersAndSources(t *testing.T) {
	s := New()
	if _, ok := s.Next(); ok {
		t.Fatal("empty scheduler reported work")
	}
	src := &recordingSource{deadlines: []simtime.Time{ms(8)}}
	s.AddSource(src)
	if next, ok := s.Next(); !ok || next != ms(8) {
		t.Fatalf("Next=%v,%v, want 8ms", next, ok)
	}
	tm := s.At(ms(3), func(simtime.Time) {})
	if next, _ := s.Next(); next != ms(3) {
		t.Fatalf("Next=%v, want timer at 3ms", next)
	}
	tm.Stop()
	if next, _ := s.Next(); next != ms(8) {
		t.Fatalf("Next=%v after stop, want 8ms", next)
	}
}

// TestWallDriverManualClock drives the wall driver with a hand-stepped
// clock: work due only becomes visible when the clock passes it and the
// driver is poked.
func TestWallDriverManualClock(t *testing.T) {
	s := New()
	clock := NewManualClock(0)
	var mu sync.Mutex
	d := NewWallDriver(clock, s, &mu)

	fired := make(chan simtime.Time, 1)
	mu.Lock()
	s.At(ms(50), func(now simtime.Time) { fired <- now })
	mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	select {
	case at := <-fired:
		t.Fatalf("timer fired at %v before clock reached it", at)
	case <-time.After(20 * time.Millisecond):
	}

	clock.Set(ms(60))
	d.Poke()
	select {
	case at := <-fired:
		if at != ms(50) {
			t.Fatalf("fired at %v, want 50ms", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire after clock advance + poke")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
}

// TestWallDriverRealClock runs a periodic task against the real monotonic
// clock and checks cancellation performs a final catch-up pass.
func TestWallDriverRealClock(t *testing.T) {
	s := New()
	clock := NewWallClock()
	var mu sync.Mutex
	d := NewWallDriver(clock, s, &mu)

	const want = 5
	hits := make(chan struct{}, want)
	mu.Lock()
	s.Every(simtime.Time(simtime.Millisecond), simtime.Millisecond, func(simtime.Time) {
		select {
		case hits <- struct{}{}:
		default:
		}
	})
	mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	for i := 0; i < want; i++ {
		select {
		case <-hits:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d periodic firings", i, want)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
}

// lockedSource is a Source whose state is guarded by the driver lock —
// the shape ctrlplane/health take under the facade runtime.
type lockedSource struct {
	next     simtime.Time
	interval simtime.Duration
	rounds   int
}

func (l *lockedSource) NextEventTime() (simtime.Time, bool) { return l.next, true }

func (l *lockedSource) Advance(now simtime.Time) {
	for !l.next.After(now) {
		l.rounds++
		l.next = l.next.Add(l.interval)
	}
}

// TestSchedulerSoak hammers a wall driver from several goroutines at once —
// scheduling one-shots and periodics, stopping tasks, poking, and reading
// state — for long enough that the race detector gets real interleavings.
// CI runs this test under -race.
func TestSchedulerSoak(t *testing.T) {
	s := New()
	clock := NewWallClock()
	var mu sync.Mutex
	d := NewWallDriver(clock, s, &mu)

	src := &lockedSource{interval: simtime.Duration(500 * 1000)} // 500µs
	mu.Lock()
	s.AddSource(src)
	mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	const (
		workers   = 4
		perWorker = 200
	)
	var fireCount sync.WaitGroup
	fireCount.Add(workers * perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				mu.Lock()
				at := clock.Now().Add(simtime.Duration((i % 7) * int(simtime.Millisecond) / 4))
				task := s.At(at, func(simtime.Time) { fireCount.Done() })
				if i%13 == 0 {
					// Stop-then-let-it-surface exercises lazy cancellation;
					// account for the firing that will never happen.
					task.Stop()
					fireCount.Done()
				}
				mu.Unlock()
				d.Poke()
				if i%31 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()

	waitDone := make(chan struct{})
	go func() { fireCount.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("scheduled work did not all execute")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	mu.Lock()
	rounds := src.rounds
	mu.Unlock()
	if rounds == 0 {
		t.Fatal("source never advanced during soak")
	}
}
