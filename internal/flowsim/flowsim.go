// Package flowsim is the flow-level discrete-event simulator the
// evaluation runs on (the paper's §3.2/§6 experiments): connections arrive
// per VIP as a Poisson process, live for sampled durations, and send
// packets densely while their state is still pending in the load balancer;
// DIP pool updates arrive as rolling-reboot events (remove a DIP, re-add it
// after its sampled downtime).
//
// The simulator is balancer-agnostic: SilkRoad (the real dataplane +
// ctrlplane driven packet by packet), Duet, and SLB implementations plug in
// behind the Balancer interface. Per-connection consistency is checked by
// the simulator itself: the first packet's DIP is recorded and every later
// packet must match.
//
// The event loop is the virtual-time driver of internal/sched: arrivals,
// probes, flow ends and pool updates are scheduler timers, and the
// balancer's background work (CPU insertions, migrations) runs as a
// scheduler source, interleaved in strict (time, sequence) order. Seeded
// runs are bit-reproducible.
package flowsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"repro/internal/dataplane"
	"repro/internal/netproto"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Balancer is the device under test.
type Balancer interface {
	// Name labels result rows.
	Name() string
	// Packet processes one packet and returns the DIP it was forwarded to.
	// ok=false means the packet was not forwarded (no VIP, drop).
	Packet(now simtime.Time, t netproto.FiveTuple, syn bool) (dataplane.DIP, bool)
	// Pinned reports whether the balancer has durable per-connection state
	// for t (pending connections keep getting probed until pinned).
	Pinned(t netproto.FiveTuple) bool
	// ConnEnd signals flow termination.
	ConnEnd(now simtime.Time, t netproto.FiveTuple)
	// Update applies a DIP pool change.
	Update(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error
	// Advance runs background work (CPU insertions, migrations) up to now.
	// Together with NextEventTime it satisfies sched.Source, so the
	// balancer plugs straight into the scheduler as a due-work source.
	Advance(now simtime.Time)
	// NextEventTime returns the next time background work is due.
	NextEventTime() (simtime.Time, bool)
	// ExtraBroken reports PCC violations the balancer detects internally
	// (e.g. Duet counts breaks at migration instants, which packet probes
	// cannot observe).
	ExtraBroken() uint64
}

// Config parameterizes one simulation run.
type Config struct {
	VIPs          int
	PoolSize      int
	ArrivalRate   float64 // new connections per second, aggregate
	FlowClass     workload.TrafficClass
	UpdatesPerMin float64          // aggregate DIP pool update events per minute
	Duration      simtime.Duration // simulated time
	ProbeInterval simtime.Duration // packet spacing while pending (~RTT)
	MaxProbes     int              // safety cap per connection
	Seed          int64
	ClusterType   workload.ClusterType // drives downtime/cause sampling
	// IPv6 runs the workload over IPv6 VIPs/DIPs/clients, exercising the
	// 37-byte connection keys Backends use (§6.1).
	IPv6 bool
	// VIPSkew is the Zipf exponent for VIP popularity (0 = uniform).
	// Production VIP traffic is heavily skewed — a handful of VIPs carry
	// most connections (Figure 8's tail).
	VIPSkew float64
}

// DefaultConfig returns a PoP-like configuration scaled for fast runs.
func DefaultConfig() Config {
	return Config{
		VIPs:          16,
		PoolSize:      16,
		ArrivalRate:   2000,
		FlowClass:     workload.Hadoop,
		UpdatesPerMin: 10,
		Duration:      simtime.Duration(30 * simtime.Second),
		ProbeInterval: simtime.Duration(250 * simtime.Microsecond),
		MaxProbes:     400,
		Seed:          1,
		ClusterType:   workload.PoP,
	}
}

// Results summarizes one run.
type Results struct {
	Balancer       string
	Conns          uint64
	Packets        uint64
	BrokenConns    uint64 // connections with >= 1 inconsistent packet
	UpdatesApplied uint64
	// SLBLoadFraction is the share of connection-time served by SLBs
	// (meaningful for Duet; 0 for pure-switch or pure-software designs).
	SLBLoadFraction float64
	SimulatedTime   simtime.Duration
}

// BrokenFraction returns broken conns / total conns.
func (r Results) BrokenFraction() float64 {
	if r.Conns == 0 {
		return 0
	}
	return float64(r.BrokenConns) / float64(r.Conns)
}

// BrokenPerMinute normalizes violations to a per-minute rate.
func (r Results) BrokenPerMinute() float64 {
	m := r.SimulatedTime.Minutes()
	if m == 0 {
		return 0
	}
	return float64(r.BrokenConns) / m
}

// String renders a result row.
func (r Results) String() string {
	return fmt.Sprintf("%-22s conns=%-8d broken=%-6d (%.5f%%) slbLoad=%.3f updates=%d",
		r.Balancer, r.Conns, r.BrokenConns, 100*r.BrokenFraction(), r.SLBLoadFraction, r.UpdatesApplied)
}

type conn struct {
	tuple    netproto.FiveTuple
	vip      dataplane.VIP
	firstDIP dataplane.DIP
	endAt    simtime.Time
	probes   int
	broken   bool
	alive    bool
}

// vipPools tracks the simulator's own view of each VIP's pool for the
// rolling-reboot update generator.
type vipPools struct {
	vip  dataplane.VIP
	live []dataplane.DIP
	down []downDIP
	next int // next fresh DIP index for provisioning
}

type downDIP struct {
	dip     dataplane.DIP
	reAddAt simtime.Time
}

// Sim is one simulation instance.
type Sim struct {
	cfg    Config
	bal    Balancer
	rng    *rand.Rand
	rt     *sched.Scheduler
	vips   []*vipPools
	vipCum []float64 // cumulative VIP popularity (Zipf)
	conns  map[netproto.FiveTuple]*conn
	res    Results
}

// New builds a simulation, announcing cfg.VIPs VIPs on the balancer.
func New(cfg Config, bal Balancer) (*Sim, error) {
	if cfg.VIPs <= 0 || cfg.PoolSize <= 0 || cfg.ArrivalRate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("flowsim: degenerate config %+v", cfg)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = simtime.Duration(250 * simtime.Microsecond)
	}
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = 400
	}
	s := &Sim{
		cfg:   cfg,
		bal:   bal,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		rt:    sched.New(),
		conns: make(map[netproto.FiveTuple]*conn),
	}
	s.rt.AddSource(bal)
	for i := 0; i < cfg.VIPs; i++ {
		addr := netip.AddrFrom4([4]byte{20, 0, byte(i >> 8), byte(i)})
		if cfg.IPv6 {
			addr = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 14: byte(i >> 8), 15: byte(i)})
		}
		vip := dataplane.VIP{
			Addr:  addr,
			Port:  80,
			Proto: netproto.ProtoTCP,
		}
		vp := &vipPools{vip: vip}
		for d := 0; d < cfg.PoolSize; d++ {
			vp.live = append(vp.live, s.dipFor(i, vp.next))
			vp.next++
		}
		s.vips = append(s.vips, vp)
	}
	// Zipf popularity: weight(i) = 1/(i+1)^skew.
	s.vipCum = make([]float64, cfg.VIPs)
	sum := 0.0
	for i := range s.vipCum {
		w := 1.0
		if cfg.VIPSkew > 0 {
			w = 1 / math.Pow(float64(i+1), cfg.VIPSkew)
		}
		sum += w
		s.vipCum[i] = sum
	}
	return s, nil
}

// pickVIP samples a VIP by popularity.
func (s *Sim) pickVIP() *vipPools {
	r := s.rng.Float64() * s.vipCum[len(s.vipCum)-1]
	lo, hi := 0, len(s.vipCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.vipCum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.vips[lo]
}

// dipFor generates the d-th DIP of VIP i.
func (s *Sim) dipFor(vipIdx, d int) dataplane.DIP {
	if s.cfg.IPv6 {
		return netip.AddrPortFrom(netip.AddrFrom16(
			[16]byte{0xfd, 0x10, 13: byte(vipIdx), 14: byte(d >> 8), 15: byte(d)}), 20)
	}
	return netip.AddrPortFrom(
		netip.AddrFrom4([4]byte{10, byte(vipIdx), byte(d >> 8), byte(d)}), 20)
}

// AnnounceVIPs installs all VIPs on a balancer via the given function
// (adapters differ in their announce signatures).
func (s *Sim) AnnounceVIPs(announce func(vip dataplane.VIP, pool []dataplane.DIP) error) error {
	for _, vp := range s.vips {
		if err := announce(vp.vip, vp.live); err != nil {
			return err
		}
	}
	return nil
}

// expInterval draws an exponential inter-arrival for the given rate/sec.
func (s *Sim) expInterval(ratePerSec float64) simtime.Duration {
	if ratePerSec <= 0 {
		return simtime.Duration(math.MaxInt64 / 4)
	}
	sec := s.rng.ExpFloat64() / ratePerSec
	d := simtime.Duration(sec * float64(simtime.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// Run executes the simulation and returns its results. The scheduler's
// virtual-time driver interleaves balancer background work with simulation
// timers in strict time order; the sequence of balancer calls is
// bit-identical to the simulator's former private event heap.
func (s *Sim) Run() Results {
	end := simtime.Time(0).Add(s.cfg.Duration)
	s.rt.At(simtime.Time(0).Add(s.expInterval(s.cfg.ArrivalRate)), s.arrivalEvent)
	if s.cfg.UpdatesPerMin > 0 {
		s.rt.At(simtime.Time(0).Add(s.expInterval(s.cfg.UpdatesPerMin/60)), s.updateEvent)
	}
	s.rt.Run(end)
	// Flush: end all live connections so accounting completes.
	s.bal.Advance(end)
	for _, c := range s.conns {
		if c.alive {
			s.bal.ConnEnd(end, c.tuple)
			c.alive = false
		}
	}
	s.res.Balancer = s.bal.Name()
	s.res.BrokenConns += s.bal.ExtraBroken()
	s.res.SimulatedTime = s.cfg.Duration
	s.res.SLBLoadFraction = s.slbLoad()
	return s.res
}

// slbLoad asks the balancer for its detour share if it exposes one.
func (s *Sim) slbLoad() float64 {
	type loadReporter interface{ SLBLoadFraction() float64 }
	if lr, ok := s.bal.(loadReporter); ok {
		return lr.SLBLoadFraction()
	}
	return 0
}

// arrivalEvent is the self-perpetuating Poisson arrival timer. The next
// arrival is scheduled after the new connection's own end/probe timers, so
// scheduler sequence numbers — and thus same-instant tie-breaks — match
// the retired event heap exactly.
func (s *Sim) arrivalEvent(now simtime.Time) {
	s.arrive(now)
	s.rt.At(now.Add(s.expInterval(s.cfg.ArrivalRate)), s.arrivalEvent)
}

// updateEvent is the self-perpetuating rolling-reboot update timer.
func (s *Sim) updateEvent(now simtime.Time) {
	s.update(now)
	s.rt.At(now.Add(s.expInterval(s.cfg.UpdatesPerMin/60)), s.updateEvent)
}

// arrive creates a new connection and sends its SYN.
func (s *Sim) arrive(now simtime.Time) {
	vp := s.pickVIP()
	n := s.res.Conns
	src := netip.AddrFrom4([4]byte{1, byte(n >> 16), byte(n >> 8), byte(n)})
	if s.cfg.IPv6 {
		src = netip.AddrFrom16([16]byte{0x20, 0x01, 12: byte(n >> 24), 13: byte(n >> 16), 14: byte(n >> 8), 15: byte(n)})
	}
	tuple := netproto.FiveTuple{
		Src:     src,
		Dst:     vp.vip.Addr,
		SrcPort: uint16(1024 + n%60000),
		DstPort: vp.vip.Port,
		Proto:   netproto.ProtoTCP,
	}
	c := &conn{
		tuple: tuple,
		vip:   vp.vip,
		endAt: now.Add(workload.SampleFlowDuration(s.rng, s.cfg.FlowClass)),
		alive: true,
	}
	s.conns[tuple] = c
	s.res.Conns++
	dip, ok := s.bal.Packet(now, tuple, true)
	s.res.Packets++
	if ok {
		c.firstDIP = dip
	}
	s.rt.At(c.endAt, func(at simtime.Time) { s.end(at, c) })
	s.rt.At(now.Add(s.cfg.ProbeInterval), func(at simtime.Time) { s.probe(at, c) })
}

// probe sends a follow-up packet of a pending connection and checks PCC.
func (s *Sim) probe(now simtime.Time, c *conn) {
	if !c.alive || now.After(c.endAt) {
		return
	}
	c.probes++
	dip, ok := s.bal.Packet(now, c.tuple, false)
	s.res.Packets++
	if ok && c.firstDIP.IsValid() && dip != c.firstDIP && !c.broken {
		c.broken = true
		s.res.BrokenConns++
	}
	if !s.bal.Pinned(c.tuple) && c.probes < s.cfg.MaxProbes {
		s.rt.At(now.Add(s.cfg.ProbeInterval), func(at simtime.Time) { s.probe(at, c) })
	}
}

// end terminates a connection.
func (s *Sim) end(now simtime.Time, c *conn) {
	if !c.alive {
		return
	}
	c.alive = false
	s.bal.ConnEnd(now, c.tuple)
	delete(s.conns, c.tuple)
}

// update applies one rolling-reboot step to a random VIP: re-add a DIP
// whose downtime elapsed, else remove a random live DIP with a sampled
// downtime (§3.1's dominant pattern).
func (s *Sim) update(now simtime.Time) {
	vp := s.vips[s.rng.Intn(len(s.vips))]
	// Prefer re-adding a recovered DIP.
	for i, dd := range vp.down {
		if !dd.reAddAt.After(now) {
			vp.live = append(vp.live, dd.dip)
			vp.down = append(vp.down[:i], vp.down[i+1:]...)
			s.applyUpdate(now, vp)
			return
		}
	}
	if len(vp.live) <= 1 {
		return // never empty a pool
	}
	idx := s.rng.Intn(len(vp.live))
	dip := vp.live[idx]
	vp.live = append(vp.live[:idx], vp.live[idx+1:]...)
	cause := workload.SampleCause(s.rng, s.cfg.ClusterType)
	downFor := workload.SampleDowntime(s.rng, cause)
	vp.down = append(vp.down, downDIP{dip: dip, reAddAt: now.Add(downFor)})
	s.applyUpdate(now, vp)
}

func (s *Sim) applyUpdate(now simtime.Time, vp *vipPools) {
	if err := s.bal.Update(now, vp.vip, append([]dataplane.DIP(nil), vp.live...)); err == nil {
		s.res.UpdatesApplied++
	}
}
