package flowsim

import (
	"net/netip"
	"testing"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/duet"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.VIPs = 8
	cfg.PoolSize = 10
	cfg.ArrivalRate = 800
	cfg.UpdatesPerMin = 20
	cfg.Duration = simtime.Duration(10 * simtime.Second)
	return cfg
}

func runSilkRoad(t *testing.T, cfg Config, dmod func(*dataplane.Config), cmod func(*ctrlplane.Config)) Results {
	t.Helper()
	dcfg := dataplane.DefaultConfig(200000)
	ccfg := ctrlplane.DefaultConfig()
	if dmod != nil {
		dmod(&dcfg)
	}
	if cmod != nil {
		cmod(&ccfg)
	}
	bal, err := NewSilkRoad("SilkRoad", dcfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, bal)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AnnounceVIPs(bal.AddVIP); err != nil {
		t.Fatal(err)
	}
	return sim.Run()
}

func TestSilkRoadZeroViolations(t *testing.T) {
	res := runSilkRoad(t, quickCfg(), nil, nil)
	if res.Conns < 5000 {
		t.Fatalf("simulated only %d conns", res.Conns)
	}
	if res.BrokenConns != 0 {
		t.Fatalf("SilkRoad broke %d connections (PCC must hold)", res.BrokenConns)
	}
	if res.UpdatesApplied == 0 {
		t.Fatal("no updates applied")
	}
	if res.SLBLoadFraction != 0 {
		t.Fatal("SilkRoad has no SLB component")
	}
}

func TestNoTransitHasViolationsUnderHighUpdateRate(t *testing.T) {
	cfg := quickCfg()
	cfg.UpdatesPerMin = 120
	cfg.ArrivalRate = 3000
	res := runSilkRoad(t, cfg,
		func(d *dataplane.Config) { d.DisableTransit = true },
		func(c *ctrlplane.Config) { c.Mode = ctrlplane.ModeNoTransit })
	if res.BrokenConns == 0 {
		t.Fatal("no-TransitTable ablation should break pending connections")
	}
	// But the exposure window is milliseconds: the fraction stays small.
	if f := res.BrokenFraction(); f > 0.05 {
		t.Fatalf("broken fraction = %.4f, expected tiny window effect", f)
	}
}

func TestDuetMigrate1minBreaksConnections(t *testing.T) {
	cfg := quickCfg()
	cfg.Duration = simtime.Duration(3 * simtime.Minute)
	cfg.UpdatesPerMin = 30
	cfg.ArrivalRate = 300
	bal := NewDuet(duet.Migrate1min, 42)
	sim, err := New(cfg, bal)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AnnounceVIPs(bal.AddVIP); err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.BrokenConns == 0 {
		t.Fatal("Duet Migrate-1min under heavy updates should break connections")
	}
	if res.SLBLoadFraction <= 0 || res.SLBLoadFraction > 1 {
		t.Fatalf("SLB load fraction = %v", res.SLBLoadFraction)
	}
}

func TestDuetMigratePCCNeverBreaks(t *testing.T) {
	cfg := quickCfg()
	cfg.Duration = simtime.Duration(2 * simtime.Minute)
	cfg.UpdatesPerMin = 30
	cfg.ArrivalRate = 300
	bal := NewDuet(duet.MigratePCC, 42)
	sim, _ := New(cfg, bal)
	sim.AnnounceVIPs(bal.AddVIP)
	res := sim.Run()
	if res.BrokenConns != 0 {
		t.Fatalf("Migrate-PCC broke %d conns", res.BrokenConns)
	}
	// The price: a large share of traffic sits on SLBs.
	if res.SLBLoadFraction < 0.2 {
		t.Fatalf("Migrate-PCC SLB load = %.3f, expected substantial", res.SLBLoadFraction)
	}
}

func TestDuetLoadOrdering(t *testing.T) {
	// Migrate-1min must put less load on SLBs than Migrate-PCC, and
	// Migrate-10min sits in between or above 1min (Figure 5a ordering).
	cfg := quickCfg()
	cfg.Duration = simtime.Duration(3 * simtime.Minute)
	cfg.UpdatesPerMin = 50
	cfg.ArrivalRate = 200
	load := map[duet.Policy]float64{}
	for _, p := range []duet.Policy{Migrate1minP(), Migrate10minP(), MigratePCCP()} {
		bal := NewDuet(p, 7)
		sim, _ := New(cfg, bal)
		sim.AnnounceVIPs(bal.AddVIP)
		load[p] = sim.Run().SLBLoadFraction
	}
	if !(load[duet.Migrate1min] < load[duet.Migrate10min]) {
		t.Fatalf("load(1min)=%.3f should be < load(10min)=%.3f",
			load[duet.Migrate1min], load[duet.Migrate10min])
	}
	if !(load[duet.Migrate10min] <= load[duet.MigratePCC]+0.05) {
		t.Fatalf("load(10min)=%.3f should be <= load(PCC)=%.3f",
			load[duet.Migrate10min], load[duet.MigratePCC])
	}
}

// tiny helpers so the loop above reads clearly
func Migrate1minP() duet.Policy  { return duet.Migrate1min }
func Migrate10minP() duet.Policy { return duet.Migrate10min }
func MigratePCCP() duet.Policy   { return duet.MigratePCC }

func TestSLBBaselinePerfect(t *testing.T) {
	cfg := quickCfg()
	bal := NewSLB()
	sim, _ := New(cfg, bal)
	sim.AnnounceVIPs(bal.AddVIP)
	res := sim.Run()
	if res.BrokenConns != 0 {
		t.Fatalf("SLB broke %d conns", res.BrokenConns)
	}
	if res.SLBLoadFraction != 1 {
		t.Fatal("pure SLB load should be 1")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := quickCfg()
	cfg.Duration = simtime.Duration(5 * simtime.Second)
	r1 := runSilkRoad(t, cfg, nil, nil)
	r2 := runSilkRoad(t, cfg, nil, nil)
	if r1.Conns != r2.Conns || r1.Packets != r2.Packets || r1.UpdatesApplied != r2.UpdatesApplied {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

// TestFramesAdapterMatchesStruct locks the wire currency to the struct
// currency at the packet level: two identically seeded switches fed the
// same traffic — one through Process on structs, one through ProcessFrame
// on marshaled-and-reparsed wire bytes — must select the same DIP with the
// same verdict for every packet, across SYNs, established ACKs and a DIP
// pool update. Any divergence means the frame path hashes or meters
// differently from the struct path.
func TestFramesAdapterMatchesStruct(t *testing.T) {
	dcfg := dataplane.DefaultConfig(200000)
	ccfg := ctrlplane.DefaultConfig()
	structBal, err := NewSilkRoad("struct", dcfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	framesBal, err := NewSilkRoadFrames("frames", dcfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}

	wt, err := workload.NewWireTraffic(workload.WireConfig{
		Conns: 400,
		VIP:   netip.MustParseAddrPort("20.0.0.1:80"),
	})
	if err != nil {
		t.Fatal(err)
	}
	vip := dataplane.VIPOf(wt.Packets()[0].Tuple)
	var pool []dataplane.DIP
	for d := 0; d < 8; d++ {
		pool = append(pool, netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 9, 0, byte(d)}), 8080))
	}
	if err := structBal.AddVIP(vip, pool); err != nil {
		t.Fatal(err)
	}
	if err := framesBal.AddVIP(vip, pool); err != nil {
		t.Fatal(err)
	}

	now := simtime.Time(0)
	check := func(i int, syn bool) {
		t.Helper()
		tup := wt.Packets()[i].Tuple
		d1, ok1 := structBal.Packet(now, tup, syn)
		d2, ok2 := framesBal.Packet(now, tup, syn)
		if d1 != d2 || ok1 != ok2 {
			t.Fatalf("conn %d (syn=%v): struct -> %v/%v, frames -> %v/%v", i, syn, d1, ok1, d2, ok2)
		}
		now = now.Add(simtime.Duration(50 * simtime.Microsecond))
	}

	for i := 0; i < wt.Len(); i++ {
		check(i, true)
	}
	now = now.Add(simtime.Duration(simtime.Second))
	structBal.Advance(now)
	framesBal.Advance(now)
	for i := 0; i < wt.Len(); i++ {
		check(i, false)
	}
	// Pool update mid-traffic: drop a DIP, keep checking agreement while
	// the 3-step update is in flight and after it settles.
	if err := structBal.Update(now, vip, pool[:len(pool)-1]); err != nil {
		t.Fatal(err)
	}
	if err := framesBal.Update(now, vip, pool[:len(pool)-1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < wt.Len(); i++ {
		check(i, false)
	}
	now = now.Add(simtime.Duration(simtime.Second))
	structBal.Advance(now)
	framesBal.Advance(now)
	for i := 0; i < wt.Len(); i++ {
		check(i, false)
	}
}

// TestFramesAdapterZeroViolations runs the full simulator over the frames
// adapter: the wire path must uphold PCC exactly like the struct path.
func TestFramesAdapterZeroViolations(t *testing.T) {
	bal, err := NewSilkRoadFrames("SilkRoad/frames", dataplane.DefaultConfig(200000), ctrlplane.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(quickCfg(), bal)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AnnounceVIPs(bal.AddVIP); err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Conns < 5000 {
		t.Fatalf("simulated only %d conns", res.Conns)
	}
	if res.BrokenConns != 0 {
		t.Fatalf("frames path broke %d connections (PCC must hold)", res.BrokenConns)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.VIPs = 0
	if _, err := New(bad, NewSLB()); err == nil {
		t.Fatal("degenerate config accepted")
	}
}

func TestResultsHelpers(t *testing.T) {
	r := Results{Conns: 100, BrokenConns: 2, SimulatedTime: simtime.Duration(2 * simtime.Minute)}
	if r.BrokenFraction() != 0.02 {
		t.Fatal("BrokenFraction")
	}
	if r.BrokenPerMinute() != 1 {
		t.Fatal("BrokenPerMinute")
	}
	if (Results{}).BrokenFraction() != 0 || (Results{}).BrokenPerMinute() != 0 {
		t.Fatal("zero-value results")
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
}

func TestZipfSkewConcentratesTraffic(t *testing.T) {
	// With a strong Zipf skew the hottest VIP dominates, and PCC must
	// still hold (the hot VIP sees the most pending connections during
	// its updates).
	cfg := quickCfg()
	cfg.VIPSkew = 1.5
	cfg.Duration = simtime.Duration(8 * simtime.Second)
	res := runSilkRoad(t, cfg, nil, nil)
	if res.BrokenConns != 0 {
		t.Fatalf("skewed workload broke %d conns", res.BrokenConns)
	}
	// Deterministic re-run matches.
	res2 := runSilkRoad(t, cfg, nil, nil)
	if res.Conns != res2.Conns {
		t.Fatal("skewed runs not reproducible")
	}
}

func TestIPv6WorkloadZeroViolations(t *testing.T) {
	// Backends run IPv6 (§6.1): the 37-byte keys exercise the wide digest
	// path end to end, with the same PCC guarantee.
	cfg := quickCfg()
	cfg.IPv6 = true
	cfg.Duration = simtime.Duration(8 * simtime.Second)
	res := runSilkRoad(t, cfg, nil, nil)
	if res.Conns < 2000 {
		t.Fatalf("only %d conns", res.Conns)
	}
	if res.BrokenConns != 0 {
		t.Fatalf("IPv6 workload broke %d conns", res.BrokenConns)
	}
}

func TestCacheTrafficLongerFlows(t *testing.T) {
	cfg := quickCfg()
	cfg.FlowClass = workload.Cache
	cfg.ArrivalRate = 200
	cfg.Duration = simtime.Duration(20 * simtime.Second)
	res := runSilkRoad(t, cfg, nil, nil)
	if res.BrokenConns != 0 {
		t.Fatalf("cache traffic broke %d conns under SilkRoad", res.BrokenConns)
	}
}
