package flowsim

import (
	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/duet"
	"repro/internal/netproto"
	"repro/internal/simtime"
	"repro/internal/slb"
)

// SilkRoadAdapter drives a real SilkRoad switch (dataplane + ctrlplane)
// packet by packet.
type SilkRoadAdapter struct {
	label string
	SW    *dataplane.Switch
	CP    *ctrlplane.ControlPlane
}

// NewSilkRoad builds a SilkRoad balancer for simulation.
func NewSilkRoad(label string, dcfg dataplane.Config, ccfg ctrlplane.Config) (*SilkRoadAdapter, error) {
	sw, err := dataplane.New(dcfg)
	if err != nil {
		return nil, err
	}
	return &SilkRoadAdapter{label: label, SW: sw, CP: ctrlplane.New(sw, ccfg)}, nil
}

// Name implements Balancer.
func (a *SilkRoadAdapter) Name() string { return a.label }

// AddVIP announces a VIP.
func (a *SilkRoadAdapter) AddVIP(vip dataplane.VIP, pool []dataplane.DIP) error {
	return a.CP.AddVIP(0, vip, pool, 0)
}

// Packet implements Balancer.
func (a *SilkRoadAdapter) Packet(now simtime.Time, t netproto.FiveTuple, syn bool) (dataplane.DIP, bool) {
	a.CP.Advance(now)
	pkt := &netproto.Packet{Tuple: t}
	if syn {
		pkt.TCPFlags = netproto.FlagSYN
	} else {
		pkt.TCPFlags = netproto.FlagACK
	}
	res := a.SW.Process(now, pkt)
	res = a.CP.HandleResult(now, pkt, res)
	return res.DIP, res.Verdict == dataplane.VerdictForward
}

// Pinned implements Balancer: a connection is pinned once its ConnTable
// entry is installed.
func (a *SilkRoadAdapter) Pinned(t netproto.FiveTuple) bool {
	_, ok := a.SW.LookupConn(t)
	return ok
}

// ConnEnd implements Balancer.
func (a *SilkRoadAdapter) ConnEnd(now simtime.Time, t netproto.FiveTuple) {
	a.CP.EndConnection(now, t)
}

// Update implements Balancer.
func (a *SilkRoadAdapter) Update(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	return a.CP.RequestUpdate(now, vip, pool)
}

// Advance implements Balancer.
func (a *SilkRoadAdapter) Advance(now simtime.Time) { a.CP.Advance(now) }

// NextEventTime implements Balancer.
func (a *SilkRoadAdapter) NextEventTime() (simtime.Time, bool) { return a.CP.NextEventTime() }

// ExtraBroken implements Balancer (SilkRoad violations are all observable
// as packet-level inconsistencies, which the simulator counts itself).
func (a *SilkRoadAdapter) ExtraBroken() uint64 { return 0 }

// SilkRoadFramesAdapter drives the same switch through the wire-native
// currency: every simulated packet is marshaled to raw bytes, parsed once
// into a Frame, and processed via ProcessFrame — the exact path the tunnel
// runs. Buffers are reused, so the per-packet conversion allocates only
// while the marshal buffer grows toward its steady-state size.
type SilkRoadFramesAdapter struct {
	SilkRoadAdapter
	buf   []byte
	frame netproto.Frame
}

// NewSilkRoadFrames builds a SilkRoad balancer whose simulation traffic
// travels as wire bytes instead of structs.
func NewSilkRoadFrames(label string, dcfg dataplane.Config, ccfg ctrlplane.Config) (*SilkRoadFramesAdapter, error) {
	inner, err := NewSilkRoad(label, dcfg, ccfg)
	if err != nil {
		return nil, err
	}
	return &SilkRoadFramesAdapter{SilkRoadAdapter: *inner}, nil
}

// Packet implements Balancer over the frame path: marshal, parse once,
// ProcessFrame, hand the verdict to the control plane by tuple.
func (a *SilkRoadFramesAdapter) Packet(now simtime.Time, t netproto.FiveTuple, syn bool) (dataplane.DIP, bool) {
	a.CP.Advance(now)
	pkt := netproto.Packet{Tuple: t}
	if syn {
		pkt.TCPFlags = netproto.FlagSYN
	} else {
		pkt.TCPFlags = netproto.FlagACK
	}
	raw, err := pkt.Marshal(a.buf)
	if err != nil {
		return dataplane.DIP{}, false
	}
	a.buf = raw
	if err := netproto.ParseFrame(raw, &a.frame); err != nil {
		return dataplane.DIP{}, false
	}
	res := a.SW.ProcessFrame(now, &a.frame)
	a.CP.HandleTupleResultInto(now, a.frame.Tuple, &res)
	return res.DIP, res.Verdict == dataplane.VerdictForward
}

// DuetAdapter wraps the Duet model with its periodic migration policy.
type DuetAdapter struct {
	B             *duet.Balancer
	policy        duet.Policy
	nextMigration simtime.Time
}

// NewDuet builds a Duet balancer for simulation.
func NewDuet(policy duet.Policy, seed uint64) *DuetAdapter {
	a := &DuetAdapter{B: duet.New(duet.Config{Policy: policy, Seed: seed}), policy: policy}
	if iv := policy.Interval(); iv > 0 {
		a.nextMigration = simtime.Time(0).Add(iv)
	}
	return a
}

// Name implements Balancer.
func (a *DuetAdapter) Name() string { return "Duet/" + a.policy.String() }

// AddVIP announces a VIP.
func (a *DuetAdapter) AddVIP(vip dataplane.VIP, pool []dataplane.DIP) error {
	return a.B.AddVIP(vip, pool)
}

// Packet implements Balancer.
func (a *DuetAdapter) Packet(now simtime.Time, t netproto.FiveTuple, syn bool) (dataplane.DIP, bool) {
	return a.B.Packet(now, t)
}

// Pinned implements Balancer: Duet pins connections instantly (software
// ConnTable at the SLB, stateless ECMP at switches — no pending window the
// probe train needs to sample).
func (a *DuetAdapter) Pinned(netproto.FiveTuple) bool { return true }

// ConnEnd implements Balancer.
func (a *DuetAdapter) ConnEnd(now simtime.Time, t netproto.FiveTuple) { a.B.ConnEnd(now, t) }

// Update implements Balancer.
func (a *DuetAdapter) Update(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	return a.B.Update(now, vip, pool)
}

// Advance implements Balancer: fire periodic migrations.
func (a *DuetAdapter) Advance(now simtime.Time) {
	iv := a.policy.Interval()
	if iv == 0 {
		return
	}
	for !a.nextMigration.After(now) {
		a.B.MigrateDue(a.nextMigration)
		a.nextMigration = a.nextMigration.Add(iv)
	}
}

// NextEventTime implements Balancer.
func (a *DuetAdapter) NextEventTime() (simtime.Time, bool) {
	if a.policy.Interval() == 0 {
		return 0, false
	}
	return a.nextMigration, true
}

// ExtraBroken implements Balancer: Duet's breaks happen at migration
// instants, counted inside the model.
func (a *DuetAdapter) ExtraBroken() uint64 { return a.B.Stats().BrokenConns }

// SLBLoadFraction reports the share of connection-time served by SLBs.
func (a *DuetAdapter) SLBLoadFraction() float64 {
	s := a.B.Stats()
	if s.TotalConnTime == 0 {
		return 0
	}
	f := float64(s.DetourConnTime) / float64(s.TotalConnTime)
	if f > 1 {
		f = 1
	}
	return f
}

// SLBAdapter wraps the pure software load balancer.
type SLBAdapter struct {
	B *slb.Balancer
}

// NewSLB builds a software LB for simulation.
func NewSLB() *SLBAdapter { return &SLBAdapter{B: slb.New(slb.DefaultConfig())} }

// Name implements Balancer.
func (a *SLBAdapter) Name() string { return "SLB" }

// AddVIP announces a VIP.
func (a *SLBAdapter) AddVIP(vip dataplane.VIP, pool []dataplane.DIP) error {
	return a.B.AddVIP(vip, pool)
}

// Packet implements Balancer.
func (a *SLBAdapter) Packet(now simtime.Time, t netproto.FiveTuple, syn bool) (dataplane.DIP, bool) {
	return a.B.Packet(now, t)
}

// Pinned implements Balancer.
func (a *SLBAdapter) Pinned(netproto.FiveTuple) bool { return true }

// ConnEnd implements Balancer.
func (a *SLBAdapter) ConnEnd(now simtime.Time, t netproto.FiveTuple) { a.B.ConnEnd(t) }

// Update implements Balancer.
func (a *SLBAdapter) Update(now simtime.Time, vip dataplane.VIP, pool []dataplane.DIP) error {
	return a.B.Update(vip, pool)
}

// Advance implements Balancer.
func (a *SLBAdapter) Advance(simtime.Time) {}

// NextEventTime implements Balancer.
func (a *SLBAdapter) NextEventTime() (simtime.Time, bool) { return 0, false }

// ExtraBroken implements Balancer: SLBs never break connections on
// updates.
func (a *SLBAdapter) ExtraBroken() uint64 { return 0 }

// SLBLoadFraction: a pure SLB design serves everything in software.
func (a *SLBAdapter) SLBLoadFraction() float64 { return 1 }
