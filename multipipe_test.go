package silkroad

// Facade-level tests for the multi-pipe data plane: Config.Pipes > 1
// shards traffic across independent pipes behind the same Switch API.

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netproto"
)

func newMultiSwitch(t *testing.T, pipes int) *Switch {
	t.Helper()
	cfg := Defaults(100000)
	cfg.Pipes = pipes
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")); err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestMultiPipeEndToEnd drives the full facade surface against a 4-pipe
// switch: process, batch, pool updates under PCC, termination, stats.
func TestMultiPipeEndToEnd(t *testing.T) {
	sw := newMultiSwitch(t, 4)
	if sw.Pipes() != 4 || sw.Engine() == nil {
		t.Fatalf("Pipes() = %d, Engine() = %v", sw.Pipes(), sw.Engine())
	}

	const conns = 500
	var pkts []*Packet
	for i := 0; i < conns; i++ {
		pkts = append(pkts, clientPkt(i, netproto.FlagSYN))
	}
	first := make([]DIP, conns)
	for i, res := range sw.ProcessBatch(0, pkts) {
		if res.Verdict != dataplane.VerdictForward || !res.DIP.IsValid() {
			t.Fatalf("conn %d: %+v", i, res)
		}
		first[i] = res.DIP
	}

	now := Time(Second)
	sw.Advance(now)
	removed := Pool("10.0.0.1:20")[0]
	if err := sw.RemoveDIP(now, testVIP(), removed); err != nil {
		t.Fatal(err)
	}
	now = now.Add(Duration(Second))
	sw.Advance(now)

	for i := 0; i < conns; i++ {
		if first[i] == removed {
			continue
		}
		res := sw.Process(now, clientPkt(i, netproto.FlagACK))
		if res.Verdict != dataplane.VerdictForward || res.DIP != first[i] {
			t.Fatalf("conn %d: PCC violated across pool update: first %v, now %+v", i, first[i], res)
		}
	}

	st := sw.Stats()
	if st.Dataplane.Packets == 0 || st.Connections == 0 {
		t.Fatalf("aggregate stats empty: %+v", st)
	}
	if len(sw.Engine().Stats().PipePackets) != 4 {
		t.Fatal("per-pipe packet counters missing")
	}

	tup := clientPkt(3, 0).Tuple
	sw.EndConnection(now, tup)
	now = now.Add(Duration(Second))
	sw.Advance(now)
	res := sw.Process(now, clientPkt(3, netproto.FlagSYN))
	if res.Verdict != dataplane.VerdictForward {
		t.Fatalf("reconnect after EndConnection: %+v", res)
	}
}

// TestMultiPipeMatchesSinglePipe asserts sharding is invisible to
// clients: identical workloads on 1-pipe and 4-pipe switches yield the
// same verdict for every packet and the same total packet count.
func TestMultiPipeMatchesSinglePipe(t *testing.T) {
	one := newMultiSwitch(t, 1)
	four := newMultiSwitch(t, 4)
	var pkts []*Packet
	for i := 0; i < 300; i++ {
		pkts = append(pkts, clientPkt(i%150, netproto.FlagSYN))
	}
	r1 := one.ProcessBatch(0, pkts)
	r4 := four.ProcessBatch(0, pkts)
	for i := range pkts {
		if r1[i].Verdict != r4[i].Verdict {
			t.Fatalf("packet %d: single-pipe %v, multi-pipe %v", i, r1[i].Verdict, r4[i].Verdict)
		}
	}
	if p1, p4 := one.Stats().Dataplane.Packets, four.Stats().Dataplane.Packets; p1 != p4 {
		t.Fatalf("packet accounting differs: %d vs %d", p1, p4)
	}
}

// TestSinglePipeBatchMatchesProcess asserts the batched entry point on a
// single-pipe switch is just a loop over Process.
func TestSinglePipeBatchMatchesProcess(t *testing.T) {
	batch := newSwitch(t)
	loop := newSwitch(t)
	var pkts []*Packet
	for i := 0; i < 100; i++ {
		pkts = append(pkts, clientPkt(i%40, netproto.FlagSYN))
	}
	got := batch.ProcessBatch(0, pkts)
	for i, pkt := range pkts {
		want := loop.Process(0, pkt)
		if got[i] != want {
			t.Fatalf("packet %d: batch %+v, loop %+v", i, got[i], want)
		}
	}
}

// TestEmptyPoolNoBackendFacade is the acceptance check for the
// empty-pool fix at the facade: when a VIP's hardware pool row is empty —
// a state the control-plane API refuses to create but the hardware can
// reach (mid-update windows, direct table writes) — every packet drops
// with VerdictNoBackend on both single- and multi-pipe switches, and
// Forward surfaces it as an error rather than DIP{}.
func TestEmptyPoolNoBackendFacade(t *testing.T) {
	for _, pipes := range []int{1, 4} {
		cfg := Defaults(10000)
		cfg.Pipes = pipes
		sw, err := NewSwitch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20")); err != nil {
			t.Fatal(err)
		}
		// Empty the pool row in hardware on every pipe.
		if pipes == 1 {
			if err := sw.Dataplane().WritePool(testVIP(), 0, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			for i := 0; i < pipes; i++ {
				if err := sw.Engine().Dataplane(i).WritePool(testVIP(), 0, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 50; i++ {
			res := sw.Process(0, clientPkt(i, netproto.FlagSYN))
			if res.Verdict != dataplane.VerdictNoBackend {
				t.Fatalf("pipes=%d packet %d: verdict = %v, want %v",
					pipes, i, res.Verdict, dataplane.VerdictNoBackend)
			}
			if res.DIP.IsValid() {
				t.Fatalf("pipes=%d: forwarded to %v from empty pool", pipes, res.DIP)
			}
		}
		if nb := sw.Stats().Dataplane.NoBackend; nb != 50 {
			t.Fatalf("pipes=%d: NoBackend = %d, want 50", pipes, nb)
		}
		raw, err := clientPkt(99, netproto.FlagSYN).Marshal(nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.Forward(0, raw); err == nil {
			t.Fatalf("pipes=%d: Forward on empty pool should error", pipes)
		}
	}
}
