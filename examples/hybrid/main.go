// Hybrid SilkRoad + SLB (§7): when the hardware ConnTable fills, it acts
// as a cache — overflow connections are pinned at a software tier with the
// DIP their packets were already hashed to, so per-connection consistency
// holds for every connection while the vast majority of traffic stays in
// hardware.
//
// The balancer's background work (learning-filter drains, CPU insertions,
// update transitions) rides the unified event scheduler: the balancer is
// registered as a due-work source and sched.Scheduler.RunUntil retires its
// deadlines in time order — the same virtual-time driver flowsim runs on.
//
// Run with: go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"net/netip"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/hybrid"
	"repro/internal/netproto"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/slb"
)

func main() {
	// A deliberately tiny hardware table: 1K entries for 5K connections.
	dcfg := dataplane.DefaultConfig(1000)
	b, err := hybrid.New(dcfg, ctrlplane.DefaultConfig(), slb.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rt := sched.New()
	rt.AddSource(b)
	vip := dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
	pool := make([]dataplane.DIP, 8)
	for i := range pool {
		pool[i] = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}), 20)
	}
	if err := b.AddVIP(0, vip, pool); err != nil {
		log.Fatal(err)
	}

	tuple := func(i int) netproto.FiveTuple {
		return netproto.FiveTuple{
			Src:     netip.AddrFrom4([4]byte{1, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst:     vip.Addr,
			SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: netproto.ProtoTCP,
		}
	}

	const conns = 5000
	now := simtime.Time(0)
	first := make([]dataplane.DIP, conns)
	for i := 0; i < conns; i++ {
		dip, ok := b.Packet(now, &netproto.Packet{Tuple: tuple(i), TCPFlags: netproto.FlagSYN})
		if !ok {
			log.Fatalf("conn %d dropped", i)
		}
		first[i] = dip
		now = now.Add(simtime.Duration(20 * simtime.Microsecond))
	}
	now = now.Add(simtime.Duration(simtime.Second))
	rt.RunUntil(now)
	st := b.Stats()
	fmt.Printf("%d connections: %d cached in hardware, %d pinned at the SLB tier\n",
		conns, conns-int(st.OverflowConns), st.OverflowConns)

	// A pool update that would remap every unpinned connection.
	if err := b.Update(now, vip, pool[:7]); err != nil {
		log.Fatal(err)
	}
	now = now.Add(simtime.Duration(200 * simtime.Millisecond))
	rt.RunUntil(now)

	moved, excusable := 0, 0
	for i := 0; i < conns; i++ {
		dip, ok := b.Packet(now, &netproto.Packet{Tuple: tuple(i), TCPFlags: netproto.FlagACK})
		if !ok {
			continue
		}
		if dip != first[i] {
			moved++
		}
		if first[i] == pool[7] {
			excusable++ // its backend was removed
		}
	}
	st = b.Stats()
	fmt.Printf("after removing %v: %d connections moved (%d had their backend removed)\n",
		pool[7], moved, excusable)
	fmt.Printf("software served %.1f%% of packets; hardware the rest\n", 100*b.SoftwareShare())
	if moved > excusable {
		log.Fatal("PCC violated for connections whose backend survived!")
	}
	fmt.Println("every connection with a surviving backend stayed put — PCC holds across the cache boundary.")
}
