// Quickstart: announce a VIP, balance a few connections, and watch the
// switch pin each connection to a backend across a DIP pool change.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"net/netip"

	silkroad "repro"
)

func main() {
	// A switch provisioned for 100K concurrent connections (the paper's
	// prototype fits 10M on a real 6.4 Tbps ASIC), with a telemetry
	// registry attached so we can inspect what the pipeline did.
	cfg := silkroad.Defaults(100_000)
	cfg.Telemetry = silkroad.NewTelemetry()
	sw, err := silkroad.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// One service: VIP 20.0.0.1:80 backed by three servers.
	vip := silkroad.NewVIP("20.0.0.1", 80, silkroad.TCP)
	if err := sw.AddVIP(0, vip, silkroad.Pool(
		"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080")); err != nil {
		log.Fatal(err)
	}

	// Ten clients connect. The first packet of each connection selects a
	// DIP by hashing over the current pool version; the ASIC notifies the
	// switch CPU, which installs a ConnTable entry within ~1 ms.
	now := silkroad.Time(0)
	conns := make([]silkroad.FiveTuple, 10)
	for i := range conns {
		conns[i] = silkroad.FiveTuple{
			Src:     netip.AddrFrom4([4]byte{192, 168, 0, byte(i + 1)}),
			Dst:     vip.Addr,
			SrcPort: uint16(40000 + i),
			DstPort: vip.Port,
			Proto:   silkroad.TCP,
		}
		res := sw.Process(now, &silkroad.Packet{Tuple: conns[i], TCPFlags: 0x02 /* SYN */})
		fmt.Printf("conn %2d -> %v (version %d)\n", i, res.DIP, res.Version)
		now = now.Add(10 * silkroad.Microsecond)
	}

	// Let the learning filter flush and the CPU install the entries.
	now = now.Add(5 * silkroad.Millisecond)
	sw.Advance(now)

	// Drain one backend for maintenance. SilkRoad runs the 3-step
	// per-connection-consistent update: established connections keep
	// their backend; only new connections see the smaller pool.
	fmt.Println("\nremoving 10.0.0.2:8080 ...")
	if err := sw.RemoveDIP(now, vip, silkroad.AddrPort("10.0.0.2:8080")); err != nil {
		log.Fatal(err)
	}
	now = now.Add(10 * silkroad.Millisecond)

	moved := 0
	for i, tup := range conns {
		res := sw.Process(now, &silkroad.Packet{Tuple: tup, TCPFlags: 0x10 /* ACK */})
		fmt.Printf("conn %2d -> %v (ConnTable hit=%v)\n", i, res.DIP, res.ConnHit)
		if !res.ConnHit {
			moved++
		}
	}

	st := sw.Stats()
	fmt.Printf("\nswitch stats: %d connections tracked, %d inserted by CPU, %d updates completed, %d B SRAM\n",
		st.Connections, st.Controlplane.Inserted, st.Controlplane.UpdatesCompleted, st.MemoryBytes)
	fmt.Println("per-connection consistency held for every established connection.")

	// The raw-packet path reports failures as wrapped sentinel errors.
	stray := &silkroad.Packet{Tuple: conns[0]}
	stray.Tuple.Dst = netip.MustParseAddr("30.0.0.1")
	raw, _ := stray.Marshal(nil)
	if _, err := sw.Forward(now, raw); errors.Is(err, silkroad.ErrNotVIP) {
		fmt.Printf("forwarding to a non-VIP fails cleanly: %v\n", err)
	}

	// The telemetry registry saw every event above; §4.2's pending window
	// (SYN seen -> ConnTable entry committed) is one of its histograms.
	snap := sw.Telemetry().Snapshot(now)
	pw := snap.Histograms["silkroad_insert_pending_window_seconds"]
	fmt.Printf("pending windows: %d inserts, mean %.2f ms\n", pw.Count, pw.Mean()*1e3)
}
