// Quickstart: announce a VIP, balance a few connections, and watch the
// switch pin each connection to a backend across a DIP pool change.
//
// The switch runs on its wall-clock event runtime: Switch.Run drives the
// learning-filter drains, CPU insertions and PCC update steps autonomously
// while this program just sends packets and sleeps — no manual Advance
// calls anywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/netip"
	"time"

	silkroad "repro"
)

func main() {
	// A switch provisioned for 100K concurrent connections (the paper's
	// prototype fits 10M on a real 6.4 Tbps ASIC), with a telemetry
	// registry attached so we can inspect what the pipeline did.
	cfg := silkroad.Defaults(100_000)
	cfg.Telemetry = silkroad.NewTelemetry()
	sw, err := silkroad.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Start the event runtime: from here on the switch CPU works on its
	// own clock, exactly like cmd/silkroadd in production.
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- sw.Run(ctx) }()

	// One service: VIP 20.0.0.1:80 backed by three servers.
	vip := silkroad.NewVIP("20.0.0.1", 80, silkroad.TCP)
	if err := sw.AddVIP(sw.Now(), vip, silkroad.Pool(
		"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080")); err != nil {
		log.Fatal(err)
	}

	// Ten clients connect. The first packet of each connection selects a
	// DIP by hashing over the current pool version; the ASIC notifies the
	// switch CPU, which installs a ConnTable entry within ~1 ms.
	conns := make([]silkroad.FiveTuple, 10)
	for i := range conns {
		conns[i] = silkroad.FiveTuple{
			Src:     netip.AddrFrom4([4]byte{192, 168, 0, byte(i + 1)}),
			Dst:     vip.Addr,
			SrcPort: uint16(40000 + i),
			DstPort: vip.Port,
			Proto:   silkroad.TCP,
		}
		res := sw.Process(sw.Now(), &silkroad.Packet{Tuple: conns[i], TCPFlags: 0x02 /* SYN */})
		fmt.Printf("conn %2d -> %v (version %d)\n", i, res.DIP, res.Version)
	}

	// Sleep past the learning-filter flush: the runtime drains the filter
	// and the CPU installs the entries while we wait.
	time.Sleep(50 * time.Millisecond)

	// Drain one backend for maintenance. SilkRoad runs the 3-step
	// per-connection-consistent update: established connections keep
	// their backend; only new connections see the smaller pool.
	fmt.Println("\nremoving 10.0.0.2:8080 ...")
	if err := sw.RemoveDIP(sw.Now(), vip, silkroad.AddrPort("10.0.0.2:8080")); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	moved := 0
	for i, tup := range conns {
		res := sw.Process(sw.Now(), &silkroad.Packet{Tuple: tup, TCPFlags: 0x10 /* ACK */})
		fmt.Printf("conn %2d -> %v (ConnTable hit=%v)\n", i, res.DIP, res.ConnHit)
		if !res.ConnHit {
			moved++
		}
	}

	st := sw.Stats()
	fmt.Printf("\nswitch stats: %d connections tracked, %d inserted by CPU, %d updates completed, %d B SRAM\n",
		st.Connections, st.Controlplane.Inserted, st.Controlplane.UpdatesCompleted, st.MemoryBytes)
	fmt.Println("per-connection consistency held for every established connection.")

	// The raw-packet path reports failures as wrapped sentinel errors.
	stray := &silkroad.Packet{Tuple: conns[0]}
	stray.Tuple.Dst = netip.MustParseAddr("30.0.0.1")
	raw, _ := stray.Marshal(nil)
	if _, err := sw.Forward(sw.Now(), raw); errors.Is(err, silkroad.ErrNotVIP) {
		fmt.Printf("forwarding to a non-VIP fails cleanly: %v\n", err)
	}

	// The telemetry registry saw every event above; §4.2's pending window
	// (SYN seen -> ConnTable entry committed) is one of its histograms.
	snap := sw.Telemetry().Snapshot(sw.Now())
	pw := snap.Histograms["silkroad_insert_pending_window_seconds"]
	fmt.Printf("pending windows: %d inserts, mean %.2f ms\n", pw.Count, pw.Mean()*1e3)

	// Shut the runtime down the way silkroadd does on SIGTERM.
	cancel()
	if err := <-runDone; err != nil {
		log.Fatal(err)
	}
}
