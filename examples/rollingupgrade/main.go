// Rolling upgrade: the §3.1 scenario that motivates SilkRoad. A service
// with 16 backends is upgraded two DIPs at a time under live traffic
// (thousands of connections arriving per second); every removal and
// re-addition runs the 3-step PCC update. The example asserts that not a
// single established connection changes backend, and shows the version
// machinery at work (versions minted, reused, retired).
//
// Time is virtual and deterministic: the switch runs on a ManualClock and
// Switch.AdvanceTo drives the event runtime — the same scheduler
// Switch.Run executes against the wall clock — synchronously to each
// instant the scenario cares about.
//
// Run with: go run ./examples/rollingupgrade
package main

import (
	"fmt"
	"log"
	"net/netip"

	silkroad "repro"
)

const (
	backends   = 16
	arrivalGap = 500 * silkroad.Microsecond // ~2000 new conns/s
	stepPause  = 50 * silkroad.Millisecond
)

func main() {
	cfg := silkroad.Defaults(1_000_000)
	cfg.Clock = silkroad.NewManualClock(0)
	sw, err := silkroad.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	vip := silkroad.NewVIP("20.0.0.1", 443, silkroad.TCP)
	pool := make([]silkroad.DIP, backends)
	for i := range pool {
		pool[i] = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 1, byte(i + 1)}), 9443)
	}
	if err := sw.AddVIP(0, vip, pool); err != nil {
		log.Fatal(err)
	}

	now := silkroad.Time(0)
	nextConn := 0
	firstDIP := map[int]silkroad.DIP{}
	violations := 0

	tuple := func(i int) silkroad.FiveTuple {
		return silkroad.FiveTuple{
			Src:     netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)}),
			Dst:     vip.Addr,
			SrcPort: uint16(1024 + i%60000),
			DstPort: vip.Port,
			Proto:   silkroad.TCP,
		}
	}
	// openConns starts n new connections at the current time.
	openConns := func(n int) {
		for i := 0; i < n; i++ {
			res := sw.Process(now, &silkroad.Packet{Tuple: tuple(nextConn), TCPFlags: 0x02})
			firstDIP[nextConn] = res.DIP
			nextConn++
			now = now.Add(arrivalGap)
		}
	}
	// probeAll sends one packet on every open connection and checks PCC.
	probeAll := func() {
		for i := 0; i < nextConn; i++ {
			res := sw.Process(now, &silkroad.Packet{Tuple: tuple(i), TCPFlags: 0x10})
			if res.DIP != firstDIP[i] {
				violations++
			}
		}
	}

	openConns(500)
	fmt.Printf("established %d connections across %d backends\n", nextConn, backends)

	// Upgrade two backends per step: take them down, keep traffic
	// flowing, bring the upgraded instances back.
	for step := 0; step < backends/2; step++ {
		a, b := pool[2*step], pool[2*step+1]
		fmt.Printf("step %2d: draining %v and %v\n", step, a, b)
		if err := sw.RemoveDIP(now, vip, a); err != nil {
			log.Fatal(err)
		}
		if err := sw.RemoveDIP(now, vip, b); err != nil {
			log.Fatal(err)
		}
		openConns(100) // connections keep arriving mid-update
		probeAll()
		now = now.Add(stepPause) // upgrade happens here
		sw.AdvanceTo(now)
		if err := sw.AddDIP(now, vip, a); err != nil {
			log.Fatal(err)
		}
		if err := sw.AddDIP(now, vip, b); err != nil {
			log.Fatal(err)
		}
		openConns(100)
		probeAll()
		now = now.Add(stepPause)
		sw.AdvanceTo(now)
	}

	st := sw.Stats()
	cur, _ := sw.CurrentPool(vip)
	fmt.Printf("\nupgrade finished: %d connections, pool back to %d backends\n", nextConn, len(cur))
	fmt.Printf("updates completed: %d, versions minted: %d, versions reused: %d\n",
		st.Controlplane.UpdatesCompleted, st.Controlplane.VersionAllocs, st.Controlplane.VersionReuses)
	fmt.Printf("PCC violations: %d\n", violations)
	if violations != 0 {
		log.Fatal("per-connection consistency was violated!")
	}
	fmt.Println("every connection stayed on its original backend throughout the upgrade.")
}
