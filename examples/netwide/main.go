// Network-wide deployment (§5.3): assign VIPs to layers of a Clos fabric
// so that no switch's ConnTable SRAM budget is exceeded and the bottleneck
// utilization is minimized, then compare against the naive
// everything-at-ToR placement and an incremental deployment where only a
// quarter of the ToRs are SilkRoad-capable.
//
// Run with: go run ./examples/netwide
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataplane"
	"repro/internal/netwide"
)

func main() {
	// A small fabric: 32 ToRs, 8 aggregation switches, 4 cores. Each
	// switch dedicates 50 MB of SRAM to load balancing and can forward
	// 6.4 Tbps.
	topo := netwide.Uniform(32, 8, 4, 50<<20, 6.4e12)

	// 200 VIPs with heavy-tailed state and traffic demands. SRAM demand
	// comes from the per-connection layout model (28-bit packed entries).
	rng := rand.New(rand.NewSource(42))
	vips := make([]netwide.VIPDemand, 200)
	for i := range vips {
		conns := int(1e4 * (1 + rng.ExpFloat64()*50)) // 10K .. few M conns
		vips[i] = netwide.VIPDemand{
			Name:       fmt.Sprintf("vip%03d", i),
			SRAMBytes:  dataplane.LayoutDigestVersion(16, 6).TableBytes(conns),
			TrafficBps: 1e9 * (1 + rng.ExpFloat64()*20),
		}
	}

	asg, err := netwide.Assign(topo, vips)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[netwide.Layer]int{}
	for _, l := range asg.Layer {
		counts[l]++
	}
	fmt.Println("optimized assignment:")
	for _, l := range []netwide.Layer{netwide.ToR, netwide.Agg, netwide.Core} {
		fmt.Printf("  %-5s %3d VIPs\n", l, counts[l])
	}
	fmt.Printf("  bottleneck SRAM utilization %.1f%%, capacity %.1f%%\n",
		100*asg.MaxSRAMUtil, 100*asg.MaxCapUtil)

	// Naive: everything at the ToR layer.
	naive := make([]netwide.Layer, len(vips))
	s, c := netwide.Utilization(topo, vips, naive)
	fmt.Printf("\nall-at-ToR baseline: SRAM %.1f%%, capacity %.1f%%\n", 100*s, 100*c)

	// Incremental deployment: only 8 of 32 ToRs are SilkRoad-enabled.
	partial := topo
	partial.Enabled[netwide.ToR] = 8
	pasg, err := netwide.Assign(partial, vips)
	if err != nil {
		log.Fatal(err)
	}
	pcounts := map[netwide.Layer]int{}
	for _, l := range pasg.Layer {
		pcounts[l]++
	}
	fmt.Printf("\nincremental deployment (8/32 ToRs enabled): ToR=%d Agg=%d Core=%d, bottleneck SRAM %.1f%%\n",
		pcounts[netwide.ToR], pcounts[netwide.Agg], pcounts[netwide.Core], 100*pasg.MaxSRAMUtil)
}
