// Baseline comparison: run the same workload — a PoP-like cluster with
// frequent DIP pool updates — through SilkRoad, Duet (three migration
// policies), and a pure software load balancer, and print the Figure 5 /
// Figure 16 trade-off table: who breaks connections, and who pays for
// consistency with software capacity.
//
// Run with: go run ./examples/baselines
package main

import (
	"fmt"
	"log"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/duet"
	"repro/internal/flowsim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	cfg := flowsim.Config{
		VIPs:          8,
		PoolSize:      16,
		ArrivalRate:   800,
		FlowClass:     workload.Hadoop,
		UpdatesPerMin: 30,
		Duration:      simtime.Duration(11 * simtime.Minute),
		Seed:          7,
		ClusterType:   workload.PoP,
	}
	fmt.Printf("workload: %d VIPs x %d DIPs, %.0f conns/s, %.0f updates/min, %v simulated\n\n",
		cfg.VIPs, cfg.PoolSize, cfg.ArrivalRate, cfg.UpdatesPerMin, cfg.Duration)
	fmt.Printf("%-26s %10s %12s %12s %10s\n", "balancer", "conns", "broken", "broken%", "SLB load")

	row := func(res flowsim.Results) {
		fmt.Printf("%-26s %10d %12d %11.4f%% %9.1f%%\n",
			res.Balancer, res.Conns, res.BrokenConns, 100*res.BrokenFraction(), 100*res.SLBLoadFraction)
	}

	// SilkRoad: per-connection state in the ASIC, 3-step PCC updates.
	sr, err := flowsim.NewSilkRoad("SilkRoad", dataplane.DefaultConfig(500_000), ctrlplane.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sim, err := flowsim.New(cfg, sr)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.AnnounceVIPs(sr.AddVIP); err != nil {
		log.Fatal(err)
	}
	row(sim.Run())

	// SilkRoad without the TransitTable (ablation).
	dcfg := dataplane.DefaultConfig(500_000)
	dcfg.DisableTransit = true
	ccfg := ctrlplane.DefaultConfig()
	ccfg.Mode = ctrlplane.ModeNoTransit
	nt, err := flowsim.NewSilkRoad("SilkRoad w/o TransitTable", dcfg, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	sim, _ = flowsim.New(cfg, nt)
	sim.AnnounceVIPs(nt.AddVIP)
	row(sim.Run())

	// Duet with its three migration policies.
	for _, p := range []duet.Policy{duet.Migrate10min, duet.Migrate1min, duet.MigratePCC} {
		bal := flowsim.NewDuet(p, 7)
		sim, _ = flowsim.New(cfg, bal)
		sim.AnnounceVIPs(bal.AddVIP)
		row(sim.Run())
	}

	// Pure software load balancer.
	slb := flowsim.NewSLB()
	sim, _ = flowsim.New(cfg, slb)
	sim.AnnounceVIPs(slb.AddVIP)
	row(sim.Run())

	fmt.Println("\nSilkRoad keeps every connection consistent with zero software detour;")
	fmt.Println("Duet trades broken connections against SLB capacity; the SLB is consistent")
	fmt.Println("but serves 100% of traffic in software.")
}
