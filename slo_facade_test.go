package silkroad

// Facade-level coverage for the SLO engine: attachment rules, the
// evaluator running as a scheduler source under AdvanceTo, and the fleet
// roll-up gating a rolling reconcile on a firing page alert.

import (
	"testing"

	"repro/internal/netproto"
	"repro/internal/telemetry"
)

func TestSLORequiresTelemetry(t *testing.T) {
	cfg := Defaults(1000)
	cfg.SLO = &SLOConfig{}
	if _, err := NewSwitch(cfg); err == nil {
		t.Fatal("NewSwitch accepted SLO config without a telemetry registry")
	}
}

func TestSwitchSLOEndToEnd(t *testing.T) {
	cfg := Defaults(100000)
	cfg.Pipes = 2
	cfg.Telemetry = NewTelemetry()
	cfg.FlightRecorder = NewFlightRecorder(FlightRecorderConfig{})
	cfg.Clock = NewManualClock(0)
	cfg.SLO = &SLOConfig{
		Interval:      10 * Millisecond,
		WindowSamples: 16,
		FastWindow:    2,
		SlowWindow:    4,
	}
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	if sw.SLO() == nil {
		t.Fatal("SLO() = nil with an SLO config attached")
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20")); err != nil {
		t.Fatal(err)
	}

	now := Time(0)
	for tick := 0; tick < 8; tick++ {
		for i := 0; i < 50; i++ {
			sw.Process(now, clientPkt(tick*50+i, netproto.FlagSYN))
		}
		now += Time(10 * Millisecond)
		sw.AdvanceTo(now)
	}

	rep := sw.SLO().Report()
	if rep.Evals == 0 {
		t.Fatal("evaluator never ran under AdvanceTo")
	}
	if rep.Fast.NewFlowRate <= 0 {
		t.Errorf("new-flow rate = %v, want > 0", rep.Fast.NewFlowRate)
	}
	if len(rep.Pipes) != 2 {
		t.Errorf("pipe forecasts = %d, want 2", len(rep.Pipes))
	}
	if len(rep.Alerts) != len(DefaultSLORules()) {
		t.Errorf("alert board = %d rules, want %d", len(rep.Alerts), len(DefaultSLORules()))
	}
	if len(rep.VIPs) == 0 {
		t.Error("no per-VIP SLIs reported")
	}
	// The evaluator's own instruments land in the shared registry.
	snap := cfg.Telemetry.Snapshot(now)
	if snap.Counters["silkroad_slo_evals_total"] == 0 {
		t.Error("silkroad_slo_evals_total not exported")
	}
}

// TestClusterSLOPausesRollout drives the full loop the issue asks for: a
// page-severity alert firing on one member holds an in-flight rolling
// fleet update, and the rollout completes after the alert resolves.
func TestClusterSLOPausesRollout(t *testing.T) {
	clock := NewManualClock(0)
	cfg := Defaults(10000)
	cfg.Clock = clock
	cfg.Telemetry = NewTelemetry()
	cfg.SLO = &SLOConfig{
		Interval:      10 * Millisecond,
		WindowSamples: 8,
		FastWindow:    1,
		SlowWindow:    2,
		Rules: []SLORule{{
			Name: "insert-pressure", Severity: SeverityPage, Threshold: 100,
			FireAfter: 1, ClearAfter: 1,
			Value: func(s SLOSignals) float64 { return s.InsertPressure },
		}},
	}
	c, err := NewCluster(ClusterConfig{Switches: 2, Switch: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := &ClusterSpec{Version: SpecVersion, VIPs: []VIPSpec{
		{VIP: "20.0.0.1:80", Pool: []string{"10.0.0.1:20"}},
	}}
	now := Time(0)
	if _, err := c.Apply(now, spec); err != nil {
		t.Fatal(err)
	}
	converge := func() {
		t.Helper()
		for i := 0; i < 100; i++ {
			now += Time(Millisecond)
			c.AdvanceTo(now)
			if c.Reconcile(now) && c.Converged() {
				return
			}
		}
		t.Fatalf("fleet not converged: %+v", c.Statuses())
	}
	converge()

	// Burn member 1: sustained insert-path pressure trips the page.
	reg1 := c.Switch(1).Telemetry()
	for tick := 0; tick < 6; tick++ {
		for i := 0; i < 50; i++ {
			reg1.OnInsert(telemetry.InsertEvent{Now: now, Outcome: telemetry.InsertRetry})
		}
		now += Time(10 * Millisecond)
		c.AdvanceTo(now)
	}
	if !c.Switch(1).SLO().PageFiring() {
		t.Fatalf("member 1 page not firing: %+v", c.Switch(1).SLO().Alerts())
	}
	fleet := c.SLO()
	if !fleet.PageFiring {
		t.Fatal("fleet roll-up missed the firing page")
	}
	if len(fleet.Alerts) == 0 || fleet.Alerts[0].Member != 1 {
		t.Fatalf("fleet alerts lack member attribution: %+v", fleet.Alerts)
	}

	// Stage generation 2 mid-burn: the rollout must hold.
	spec2 := &ClusterSpec{Version: SpecVersion, VIPs: []VIPSpec{
		{VIP: "20.0.0.1:80", Pool: []string{"10.0.0.1:20", "10.0.0.2:20"}},
	}}
	if _, err := c.Apply(now, spec2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		now += Time(Millisecond)
		c.AdvanceTo(now)
		if c.Reconcile(now) {
			t.Fatal("rollout converged through a firing page alert")
		}
	}
	if !c.RolloutPaused() {
		t.Fatal("RolloutPaused = false while a member page fires")
	}

	// Quiet: the pressure stops, the alert resolves, the rollout resumes.
	for tick := 0; tick < 6; tick++ {
		now += Time(10 * Millisecond)
		c.AdvanceTo(now)
	}
	if c.Switch(1).SLO().PageFiring() {
		t.Fatalf("member 1 page still firing after quiet: %+v", c.Switch(1).SLO().Alerts())
	}
	converge()
	if c.RolloutPaused() {
		t.Fatal("RolloutPaused = true after completed rollout")
	}
	for _, st := range c.Statuses() {
		if st.Condition != CondApplied || st.ObservedGeneration != 2 {
			t.Errorf("status %+v, want Applied@2", st)
		}
	}
}
