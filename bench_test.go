package silkroad_test

// Benchmark targets, one per table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index and EXPERIMENTS.md for measured
// output). Each benchmark regenerates its table/figure through the same
// code path as cmd/silkroad-bench, at a reduced scale so `go test -bench`
// completes in minutes. Plus microbenchmarks of the hot paths whose
// line-rate feasibility the paper asserts.
//
// This file is an external test package (and dot-imports the facade) so
// it can use internal/experiments: the experiments package imports the
// root facade for its soaks, which an in-package test file would turn
// into an import cycle.

import (
	"net/netip"
	"testing"

	. "repro"
	"repro/internal/experiments"
	"repro/internal/netproto"
)

// benchScale keeps simulation-backed figures short under -bench.
const benchScale = 0.1

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := r.Run(benchScale, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkTable1SRAMTrend(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkTable2Resources(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkFig2UpdateFrequency(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig3RootCauses(b *testing.B)        { runExperiment(b, "fig3") }
func BenchmarkFig4Downtime(b *testing.B)          { runExperiment(b, "fig4") }
func BenchmarkFig5Dilemma(b *testing.B)           { runExperiment(b, "fig5") }
func BenchmarkFig6ActiveConns(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig8NewConns(b *testing.B)          { runExperiment(b, "fig8") }
func BenchmarkFig12SRAMUsage(b *testing.B)        { runExperiment(b, "fig12") }
func BenchmarkFig13SLBReplacement(b *testing.B)   { runExperiment(b, "fig13") }
func BenchmarkFig14MemorySaving(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15VersionReuse(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkFig16PCCUpdateFreq(b *testing.B)    { runExperiment(b, "fig16") }
func BenchmarkFig17PCCArrivalRate(b *testing.B)   { runExperiment(b, "fig17") }
func BenchmarkFig18TransitTableSize(b *testing.B) { runExperiment(b, "fig18") }
func BenchmarkSec52Prototype(b *testing.B)        { runExperiment(b, "sec52") }
func BenchmarkChaosSoak(b *testing.B)             { runExperiment(b, "chaos") }

// --- hot-path microbenchmarks -------------------------------------------

// BenchmarkPipelineHit measures the per-packet cost of the full public
// path for an established connection (ConnTable hit).
func BenchmarkPipelineHit(b *testing.B) {
	sw, err := NewSwitch(Defaults(1_000_000))
	if err != nil {
		b.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	if err := sw.AddVIP(0, vip, Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20", "10.0.0.4:20")); err != nil {
		b.Fatal(err)
	}
	pkt := &Packet{
		Tuple: FiveTuple{
			Src: AddrPort("1.2.3.4:1234").Addr(), Dst: vip.Addr,
			SrcPort: 1234, DstPort: 80, Proto: TCP,
		},
		TCPFlags: netproto.FlagSYN,
	}
	sw.Process(0, pkt)
	sw.Advance(Time(5 * Millisecond))
	pkt.TCPFlags = netproto.FlagACK
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Process(Time(i)+Time(10*Millisecond), pkt)
	}
}

// BenchmarkPipelineNewConnections measures the miss path including
// learning, CPU insertion and connection teardown at steady state.
func BenchmarkPipelineNewConnections(b *testing.B) {
	sw, err := NewSwitch(Defaults(1_000_000))
	if err != nil {
		b.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	sw.AddVIP(0, vip, Pool("10.0.0.1:20", "10.0.0.2:20"))
	b.ReportAllocs()
	b.ResetTimer()
	now := Time(0)
	for i := 0; i < b.N; i++ {
		pkt := &Packet{
			Tuple: FiveTuple{
				Src: AddrPort("1.2.3.4:1234").Addr(), Dst: vip.Addr,
				SrcPort: uint16(i), DstPort: 80, Proto: TCP,
			},
			TCPFlags: netproto.FlagSYN,
		}
		pkt.Tuple.Src = clientAddr(i)
		sw.Process(now, pkt)
		now = now.Add(5 * Microsecond)
		if i%4096 == 0 {
			// Keep the table from filling: end the oldest connections.
			sw.Advance(now)
		}
		if i%8192 == 8191 {
			for j := i - 8191; j <= i; j++ {
				t := FiveTuple{Src: clientAddr(j), Dst: vip.Addr, SrcPort: uint16(j), DstPort: 80, Proto: TCP}
				sw.EndConnection(now, t)
			}
		}
	}
}

// BenchmarkForwardRaw measures the complete raw-packet path: decode,
// balance, rewrite, checksums.
func BenchmarkForwardRaw(b *testing.B) {
	sw, err := NewSwitch(Defaults(100000))
	if err != nil {
		b.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	sw.AddVIP(0, vip, Pool("10.0.0.1:20", "10.0.0.2:20"))
	p := &Packet{
		Tuple:    FiveTuple{Src: clientAddr(1), Dst: vip.Addr, SrcPort: 99, DstPort: 80, Proto: TCP},
		TCPFlags: netproto.FlagACK,
		Payload:  make([]byte, 64),
	}
	raw, err := p.Marshal(nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, len(raw))
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, raw)
		if _, err := sw.Forward(Time(i), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func clientAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{1, byte(i >> 16), byte(i >> 8), byte(i)})
}

// frameBenchSwitch primes a switch with established connections and
// returns the pre-parsed wire frames for them (the tunnel's steady-state
// currency: parse once, process many).
func frameBenchSwitch(tb testing.TB, conns int) (*Switch, []Frame) {
	tb.Helper()
	sw, err := NewSwitch(Defaults(conns * 4))
	if err != nil {
		tb.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	if err := sw.AddVIP(0, vip, Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20", "10.0.0.4:20")); err != nil {
		tb.Fatal(err)
	}
	frames := make([]Frame, conns)
	for i := range frames {
		p := &Packet{
			Tuple: FiveTuple{
				Src: clientAddr(i), Dst: vip.Addr,
				SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: TCP,
			},
			TCPFlags: netproto.FlagSYN,
			Payload:  make([]byte, 64),
		}
		raw, err := p.Marshal(nil)
		if err != nil {
			tb.Fatal(err)
		}
		if err := ParseFrame(raw, &frames[i]); err != nil {
			tb.Fatal(err)
		}
	}
	// Open every connection and let the insertions land, so the measured
	// region is pure ConnTable hits.
	sw.ProcessFrames(0, frames)
	sw.Advance(Time(5 * Millisecond))
	for i := range frames {
		p := &Packet{
			Tuple:    frames[i].Tuple,
			TCPFlags: netproto.FlagACK,
			Payload:  make([]byte, 64),
		}
		raw, err := p.Marshal(nil)
		if err != nil {
			tb.Fatal(err)
		}
		if err := ParseFrame(raw, &frames[i]); err != nil {
			tb.Fatal(err)
		}
	}
	return sw, frames
}

// BenchmarkProcessFrames measures the wire-native batch path at steady
// state: pre-parsed frames of established connections through
// ProcessFramesInto. The acceptance bar is 0 allocs/packet.
func BenchmarkProcessFrames(b *testing.B) {
	const conns = 2048
	sw, frames := frameBenchSwitch(b, conns)
	results := make([]Result, conns)
	var wire int64
	for i := range frames {
		wire += int64(len(frames[i].Data))
	}
	b.SetBytes(wire / int64(conns))
	b.ReportAllocs()
	b.ResetTimer()
	now := Time(10 * Millisecond)
	for i := 0; i < b.N; i += conns {
		sw.ProcessFramesInto(now, frames, results)
		now = now.Add(Microsecond)
	}
}

// TestProcessFramesZeroAlloc enforces the acceptance criterion directly:
// the steady-state frames batch path performs zero allocations per batch.
func TestProcessFramesZeroAlloc(t *testing.T) {
	const conns = 512
	sw, frames := frameBenchSwitch(t, conns)
	results := make([]Result, conns)
	now := Time(10 * Millisecond)
	sw.ProcessFramesInto(now, frames, results) // warm any lazy state
	allocs := testing.AllocsPerRun(50, func() {
		now = now.Add(Microsecond)
		sw.ProcessFramesInto(now, frames, results)
	})
	if allocs != 0 {
		t.Fatalf("ProcessFramesInto allocated %.1f times per batch, want 0", allocs)
	}
	for i := range results {
		if results[i].Verdict != VerdictForward || !results[i].ConnHit {
			t.Fatalf("packet %d not a steady-state hit: %+v", i, results[i])
		}
	}
}
