package silkroad

import (
	"net/netip"
	"testing"

	"repro/internal/netproto"
)

func testVIP() VIP { return NewVIP("20.0.0.1", 80, TCP) }

func newSwitch(t *testing.T) *Switch {
	t.Helper()
	sw, err := NewSwitch(Defaults(100000))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")); err != nil {
		t.Fatal(err)
	}
	return sw
}

func clientPkt(i int, flags uint8) *Packet {
	return &Packet{
		Tuple: FiveTuple{
			Src:     netip.AddrFrom4([4]byte{1, 2, byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("20.0.0.1"),
			SrcPort: uint16(1024 + i),
			DstPort: 80,
			Proto:   TCP,
		},
		TCPFlags: flags,
	}
}

func TestProcessBasic(t *testing.T) {
	sw := newSwitch(t)
	res := sw.Process(0, clientPkt(1, netproto.FlagSYN))
	if !res.DIP.IsValid() {
		t.Fatal("no DIP chosen")
	}
	res2 := sw.Process(Time(Millisecond)*3, clientPkt(1, netproto.FlagACK))
	if res2.DIP != res.DIP {
		t.Fatal("connection remapped")
	}
	if !res2.ConnHit {
		t.Fatal("entry not installed after 3ms")
	}
	st := sw.Stats()
	if st.Connections != 1 || st.Dataplane.Packets != 2 || st.Controlplane.Inserted != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MemoryBytes == 0 {
		t.Fatal("memory not reported")
	}
}

func TestForwardRawPacket(t *testing.T) {
	sw := newSwitch(t)
	p := clientPkt(2, netproto.FlagSYN)
	p.Payload = []byte("GET /")
	raw, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	dip, err := sw.Forward(0, raw)
	if err != nil {
		t.Fatal(err)
	}
	var out Packet
	if err := netproto.Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tuple.Dst != dip.Addr() || out.Tuple.DstPort != dip.Port() {
		t.Fatalf("raw packet not rewritten to %v: %v", dip, out.Tuple)
	}
	if string(out.Payload) != "GET /" {
		t.Fatal("payload corrupted")
	}
}

func TestForwardErrors(t *testing.T) {
	sw := newSwitch(t)
	if _, err := sw.Forward(0, []byte{0x45}); err == nil {
		t.Fatal("truncated packet accepted")
	}
	stranger := clientPkt(1, netproto.FlagSYN)
	stranger.Tuple.Dst = netip.MustParseAddr("8.8.8.8")
	raw, _ := stranger.Marshal(nil)
	if _, err := sw.Forward(0, raw); err == nil {
		t.Fatal("non-VIP packet accepted")
	}
}

func TestPCCDuringRollingUpgrade(t *testing.T) {
	sw := newSwitch(t)
	vip := testVIP()
	// Establish connections.
	first := map[int]DIP{}
	for i := 0; i < 60; i++ {
		first[i] = sw.Process(Time(i)*1000, clientPkt(i, netproto.FlagSYN)).DIP
	}
	// Rolling upgrade: remove and re-add each DIP while traffic continues.
	now := Time(Millisecond)
	for _, d := range Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20") {
		if err := sw.RemoveDIP(now, vip, d); err != nil {
			t.Fatal(err)
		}
		now = now.Add(5 * Millisecond)
		for i := 0; i < 60; i++ {
			res := sw.Process(now, clientPkt(i, netproto.FlagACK))
			if res.Verdict.String() == "forward" && res.DIP != first[i] {
				t.Fatalf("conn %d remapped during upgrade of %v", i, d)
			}
		}
		if err := sw.AddDIP(now, vip, d); err != nil {
			t.Fatal(err)
		}
		now = now.Add(5 * Millisecond)
	}
	sw.Advance(now.Add(50 * Millisecond))
	pool, err := sw.CurrentPool(vip)
	if err != nil || len(pool) != 3 {
		t.Fatalf("pool after upgrade: %v, %v", pool, err)
	}
}

func TestEndConnectionFreesState(t *testing.T) {
	sw := newSwitch(t)
	pkt := clientPkt(5, netproto.FlagSYN)
	sw.Process(0, pkt)
	sw.Advance(Time(3 * Millisecond))
	if sw.Stats().Connections != 1 {
		t.Fatal("conn not tracked")
	}
	sw.EndConnection(Time(4*Millisecond), pkt.Tuple)
	if sw.Stats().Connections != 0 {
		t.Fatal("conn not freed")
	}
}

func TestMeteredVIP(t *testing.T) {
	sw, _ := NewSwitch(Defaults(1000))
	vip := NewVIP("20.0.0.9", 80, TCP)
	if err := sw.AddVIPMetered(0, vip, Pool("10.0.0.1:20"), 1000); err != nil {
		t.Fatal(err)
	}
	pkt := clientPkt(1, 0)
	pkt.Tuple.Dst = netip.MustParseAddr("20.0.0.9")
	pkt.Payload = make([]byte, 900)
	drops := 0
	for i := 0; i < 50; i++ {
		raw, _ := pkt.Marshal(nil)
		if _, err := sw.Forward(0, raw); err != nil {
			drops++
		}
	}
	if drops < 40 {
		t.Fatalf("meter dropped %d of 50 burst packets", drops)
	}
}

func TestNextEventTime(t *testing.T) {
	sw := newSwitch(t)
	if _, ok := sw.NextEventTime(); ok {
		t.Fatal("idle switch has events")
	}
	sw.Process(0, clientPkt(1, netproto.FlagSYN))
	if at, ok := sw.NextEventTime(); !ok || at != Time(Millisecond) {
		t.Fatalf("NextEventTime = %v,%v", at, ok)
	}
}

func TestHelpers(t *testing.T) {
	v := NewVIP("1.2.3.4", 99, UDP)
	if v.Port != 99 || v.Proto != UDP {
		t.Fatal("NewVIP fields")
	}
	p := Pool("10.0.0.1:1", "10.0.0.2:2")
	if len(p) != 2 || p[1].Port() != 2 {
		t.Fatal("Pool parsing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad literal did not panic")
		}
	}()
	AddrPort("nonsense")
}

func TestForwardIPIP(t *testing.T) {
	sw := newSwitch(t)
	p := clientPkt(3, netproto.FlagSYN)
	p.Payload = []byte("dsr")
	raw, _ := p.Marshal(nil)
	self := netip.MustParseAddr("192.0.2.1")
	enc, dip, err := sw.ForwardIPIP(0, raw, self)
	if err != nil {
		t.Fatal(err)
	}
	inner, outerSrc, outerDst, err := netproto.DecapIPIP(enc)
	if err != nil {
		t.Fatal(err)
	}
	if outerSrc != self || outerDst != dip.Addr() {
		t.Fatalf("outer %v->%v, want %v->%v", outerSrc, outerDst, self, dip.Addr())
	}
	var q Packet
	if err := netproto.Decode(inner, &q); err != nil {
		t.Fatal(err)
	}
	// DSR: the inner packet still carries the VIP destination.
	if q.Tuple.Dst != testVIP().Addr {
		t.Fatalf("inner dst = %v, want VIP", q.Tuple.Dst)
	}
	if _, _, err := sw.ForwardIPIP(0, []byte{1}, self); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRemoveVIP(t *testing.T) {
	sw := newSwitch(t)
	if err := sw.RemoveVIP(0, testVIP()); err != nil {
		t.Fatal(err)
	}
	res := sw.Process(0, clientPkt(1, netproto.FlagSYN))
	if res.Verdict.String() != "no-vip" {
		t.Fatalf("verdict = %v after RemoveVIP", res.Verdict)
	}
}

func TestUpdatePoolWholesale(t *testing.T) {
	sw := newSwitch(t)
	if err := sw.UpdatePool(0, testVIP(), Pool("10.0.9.1:20", "10.0.9.2:20")); err != nil {
		t.Fatal(err)
	}
	sw.Advance(Time(10 * Millisecond))
	pool, _ := sw.CurrentPool(testVIP())
	if len(pool) != 2 || pool[0].Addr() != netip.MustParseAddr("10.0.9.1") {
		t.Fatalf("pool = %v", pool)
	}
}
