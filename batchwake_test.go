package silkroad

// Regression tests for the facade batch path against the wall-clock
// runtime: a learned batch on an otherwise quiet multi-pipe switch must
// wake the wall driver through the single post-batch poke, and Close must
// stop the engine workers without disabling the switch.

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/netproto"
)

// TestLearnedBatchWakesWallDriver parks the wall driver on an idle
// multi-pipe switch, then submits one SYN batch. ProcessBatch issues at
// most one poke for the whole batch; that single poke must be enough for
// the driver to re-read NextDue across all pipes and drain every pipe's
// learn flush promptly. If the poke were lost, the driver would sleep out
// its 250 ms idle poll — the latency bound below catches that.
func TestLearnedBatchWakesWallDriver(t *testing.T) {
	clock := NewManualClock(0)
	cfg := Defaults(100000)
	cfg.Clock = clock
	cfg.Pipes = 4
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sw.Run(ctx) }()
	waitFor(t, "runtime driver to start", func() bool {
		return sw.rt.driver.Load() != nil
	})
	// Let the driver finish any startup pass and park in its idle sleep:
	// with nothing scheduled it naps 250 ms at a time, so after 300 ms it
	// is mid-nap with essentially the full poll interval ahead of it.
	time.Sleep(300 * time.Millisecond)

	const conns = 32
	pkts := make([]*Packet, conns)
	for i := range pkts {
		pkts[i] = clientPkt(i, netproto.FlagSYN)
	}
	start := time.Now()
	res := sw.ProcessBatch(sw.Now(), pkts)
	learned := false
	for i := range res {
		learned = learned || res[i].Learned
	}
	if !learned {
		t.Fatal("SYN batch learned nothing")
	}
	// Past the learning-filter flush (1 ms) plus the rate-limited
	// insertions; the driver still has to wake up to notice.
	clock.Set(Time(50 * Millisecond))
	waitFor(t, "batch learns drained by the runtime", func() bool {
		return sw.Stats().Controlplane.Inserted == conns
	})
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("drain took %v — poke lost, driver slept out its idle poll", elapsed)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
}

// TestCloseStopsWorkers verifies facade Close semantics: idempotent, and
// the switch keeps forwarding batches afterwards (inline on the caller).
func TestCloseStopsWorkers(t *testing.T) {
	sw := newMultiSwitch(t, 4)
	pkts := make([]*Packet, 64)
	for i := range pkts {
		pkts[i] = clientPkt(i, netproto.FlagSYN)
	}
	sw.ProcessBatch(0, pkts)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for i := range pkts {
		pkts[i] = clientPkt(i, netproto.FlagACK)
	}
	res := sw.ProcessBatch(Time(Second), pkts)
	for i := range res {
		if res[i].Verdict != dataplane.VerdictForward {
			t.Fatalf("post-Close packet %d: %v", i, res[i].Verdict)
		}
	}
	// Single-pipe switches have no workers; Close must still be a no-op.
	single, err := NewSwitch(Defaults(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Close(); err != nil {
		t.Fatal(err)
	}
}
