// Command silkroad-sim runs custom flow-level simulations against any of
// the implemented load balancer designs and prints the PCC/SLB-load
// results — the free-form companion to cmd/silkroad-bench's fixed figures.
//
//	silkroad-sim -balancer silkroad -rate 2000 -updates 30 -duration 1m
//	silkroad-sim -balancer duet-1min -rate 500 -updates 50 -traffic cache
//	silkroad-sim -balancer all -ipv6
//
// Balancers: silkroad, silkroad-notransit, duet-10min, duet-1min,
// duet-pcc, slb, or all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/duet"
	"repro/internal/flowsim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func main() {
	balancer := flag.String("balancer", "silkroad", "design under test (or 'all')")
	vips := flag.Int("vips", 16, "number of VIPs")
	poolSize := flag.Int("pool", 16, "DIPs per VIP")
	rate := flag.Float64("rate", 2000, "new connections per second")
	updates := flag.Float64("updates", 10, "DIP pool updates per minute")
	duration := flag.Duration("duration", 30*time.Second, "simulated (virtual) time")
	traffic := flag.String("traffic", "hadoop", "flow duration class: hadoop (10s median) or cache (4.5min)")
	ipv6 := flag.Bool("ipv6", false, "IPv6 workload (37-byte connection keys)")
	seed := flag.Int64("seed", 1, "random seed")
	connCap := flag.Int("conncap", 1_000_000, "SilkRoad ConnTable provisioning")
	transitBytes := flag.Int("transit", 256, "SilkRoad TransitTable size in bytes")
	learnTimeout := flag.Duration("learn", time.Millisecond, "learning filter timeout")
	flag.Parse()

	cfg := flowsim.Config{
		VIPs:          *vips,
		PoolSize:      *poolSize,
		ArrivalRate:   *rate,
		UpdatesPerMin: *updates,
		Duration:      simtime.Duration(duration.Nanoseconds()),
		Seed:          *seed,
		IPv6:          *ipv6,
		ClusterType:   workload.PoP,
	}
	switch *traffic {
	case "hadoop":
		cfg.FlowClass = workload.Hadoop
	case "cache":
		cfg.FlowClass = workload.Cache
	default:
		fmt.Fprintf(os.Stderr, "silkroad-sim: unknown traffic class %q\n", *traffic)
		os.Exit(2)
	}

	names := []string{*balancer}
	if *balancer == "all" {
		names = []string{"silkroad", "silkroad-notransit", "duet-10min", "duet-1min", "duet-pcc", "slb"}
	}
	fmt.Printf("workload: %d VIPs x %d DIPs, %.0f conns/s, %.0f updates/min, %v, %s flows, ipv6=%v\n\n",
		cfg.VIPs, cfg.PoolSize, cfg.ArrivalRate, cfg.UpdatesPerMin, *duration, *traffic, *ipv6)

	for _, name := range names {
		bal, announce, err := makeBalancer(name, *connCap, *transitBytes,
			simtime.Duration(learnTimeout.Nanoseconds()), uint64(*seed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "silkroad-sim: %v\n", err)
			os.Exit(2)
		}
		sim, err := flowsim.New(cfg, bal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "silkroad-sim: %v\n", err)
			os.Exit(1)
		}
		if err := sim.AnnounceVIPs(announce); err != nil {
			fmt.Fprintf(os.Stderr, "silkroad-sim: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		res := sim.Run()
		fmt.Printf("%s   (%.1fs wall)\n", res, time.Since(start).Seconds())
	}
}

// makeBalancer constructs the named design.
func makeBalancer(name string, connCap, transitBytes int, learnTimeout simtime.Duration, seed uint64) (flowsim.Balancer, func(dataplane.VIP, []dataplane.DIP) error, error) {
	mkSilkroad := func(label string, disableTransit bool) (flowsim.Balancer, func(dataplane.VIP, []dataplane.DIP) error, error) {
		dcfg := dataplane.DefaultConfig(connCap)
		dcfg.TransitTableBytes = transitBytes
		dcfg.LearnFilterTimeout = learnTimeout
		dcfg.DisableTransit = disableTransit
		ccfg := ctrlplane.DefaultConfig()
		if disableTransit {
			ccfg.Mode = ctrlplane.ModeNoTransit
		}
		b, err := flowsim.NewSilkRoad(label, dcfg, ccfg)
		if err != nil {
			return nil, nil, err
		}
		return b, b.AddVIP, nil
	}
	switch name {
	case "silkroad":
		return mkSilkroad("SilkRoad", false)
	case "silkroad-notransit":
		return mkSilkroad("SilkRoad w/o TransitTable", true)
	case "duet-10min":
		b := flowsim.NewDuet(duet.Migrate10min, seed)
		return b, b.AddVIP, nil
	case "duet-1min":
		b := flowsim.NewDuet(duet.Migrate1min, seed)
		return b, b.AddVIP, nil
	case "duet-pcc":
		b := flowsim.NewDuet(duet.MigratePCC, seed)
		return b, b.AddVIP, nil
	case "slb":
		b := flowsim.NewSLB()
		return b, b.AddVIP, nil
	default:
		return nil, nil, fmt.Errorf("unknown balancer %q", name)
	}
}
