// HTTP surface of silkroadd: Prometheus metrics, readiness, the
// declarative spec API, config introspection, the SLO report and alert
// board, and (optionally) the flight-recorder debug handlers. Split from
// main so handler behaviour is testable without sockets or a packet loop.
package main

import (
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/pprof"

	silkroad "repro"
)

// newMux wires every silkroadd HTTP endpoint onto a fresh mux. reg is the
// switch's telemetry registry (always non-nil in silkroadd); debug adds
// the flight-recorder and pprof surfaces.
func newMux(sw *silkroad.Switch, reg *silkroad.Telemetry, src *specSource, debug bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := silkroad.WritePrometheus(w, reg.Snapshot(sw.Now())); err != nil {
			log.Printf("silkroadd: metrics write: %v", err)
		}
	})
	// Readiness: 200 while every pipe is below its occupancy watermark,
	// 503 with per-pipe detail once any pipe degrades to stateless
	// service — load-balancer health checks can drain the box before it
	// starts breaking PCC for new flows.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		st := sw.DegradedState()
		w.Header().Set("Content-Type", "application/json")
		if st.Degraded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if err := json.NewEncoder(w).Encode(st); err != nil {
			log.Printf("silkroadd: readyz write: %v", err)
		}
	})
	// Declarative config API: PUT a whole spec, read back what is
	// applied. Invalid specs answer 422 with the full error list and
	// touch nothing.
	mux.HandleFunc("/v1/spec", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			w.Header().Set("Allow", http.MethodPut)
			http.Error(w, "use PUT", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spec, err := silkroad.ParseSpec(body)
		if err == nil {
			_, err = sw.Apply(sw.Now(), spec)
		}
		if err != nil {
			var verr *silkroad.SpecValidationError
			if errors.As(err, &verr) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusUnprocessableEntity)
				_ = json.NewEncoder(w).Encode(verr)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		src.set("api", "")
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Generation uint64               `json:"generation"`
			Statuses   []silkroad.VIPStatus `json:"statuses"`
		}{sw.SpecGeneration(), sw.VIPStatuses()})
	})
	// Read-only view of the applied configuration.
	mux.HandleFunc("/configz", func(w http.ResponseWriter, _ *http.Request) {
		source, lastErr := src.get()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Source     string                `json:"source"`
			LastError  string                `json:"last_error,omitempty"`
			Generation uint64                `json:"generation"`
			Converged  bool                  `json:"converged"`
			Statuses   []silkroad.VIPStatus  `json:"statuses"`
			Spec       *silkroad.ClusterSpec `json:"spec,omitempty"`
		}{source, lastErr, sw.SpecGeneration(), sw.Converged(),
			sw.VIPStatuses(), sw.AppliedSpec()})
	})
	// The full SLO report: windowed SLIs, per-VIP breakdown, occupancy
	// forecasts and the alert board, as one JSON document.
	mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		ev := sw.SLO()
		if ev == nil {
			http.Error(w, "slo evaluator disabled (-slo-interval 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ev.Report()); err != nil {
			log.Printf("silkroadd: slo write: %v", err)
		}
	})
	// The alert board and its recent transition history — what an
	// on-call pages on, with flight-recorder journal cursors linking
	// each transition back to the evidence.
	mux.HandleFunc("/alertz", func(w http.ResponseWriter, _ *http.Request) {
		ev := sw.SLO()
		if ev == nil {
			http.Error(w, "slo evaluator disabled (-slo-interval 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		err := enc.Encode(struct {
			PageFiring bool                       `json:"page_firing"`
			Alerts     []silkroad.AlertStatus     `json:"alerts"`
			History    []silkroad.AlertTransition `json:"history"`
		}{ev.PageFiring(), ev.Alerts(), ev.History()})
		if err != nil {
			log.Printf("silkroadd: alertz write: %v", err)
		}
	})
	if debug {
		mux.Handle("/debug/silkroad/", sw.DebugHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
