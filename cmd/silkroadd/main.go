// Command silkroadd runs a SilkRoad switch against real sockets: it
// listens on a UDP port, treats each datagram's payload as a raw IPv4/IPv6
// packet (the encapsulation a ToR would see), runs it through the SilkRoad
// pipeline on the wire-native frame path (silkroad.Tunnel: batched socket
// reads, one parse per packet, in-place rewrite or IP-in-IP encap at TX),
// and forwards to the chosen DIP as a UDP datagram.
//
// This is the "zero-to-forwarding" demo of the data path; production
// deployment of the real system is a P4 program on an ASIC. The switch
// runs on its wall-clock event runtime (Switch.Run): learning-filter
// drains, CPU insertions, PCC update steps, connection aging and periodic
// stats all execute autonomously — the daemon never advances time by hand.
// SIGINT/SIGTERM shut it down cleanly with a final metrics snapshot.
//
//	silkroadd -listen :9000 -vip 20.0.0.1:80 -dips 127.0.0.1:9001,127.0.0.1:9002
//
// Configuration is declarative: the -vip/-dips flags are folded into a
// one-VIP ClusterSpec and applied through the same reconcile engine as
// -config <file> (a JSON spec, polled for changes and re-applied) and the
// PUT /v1/spec endpoint on the -metrics listener. GET /configz reports the
// last applied spec, its generation and per-VIP status conditions.
//
// Test it with cmd/tracegen's -emit mode or any tool that sends raw
// IPv4/TCP bytes over UDP.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	rtdebug "runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	silkroad "repro"
)

// buildVersion reports the binary's module version from the embedded build
// info ("(devel)" for plain `go build`/`go run`), for the
// silkroad_build_info metric.
func buildVersion() string {
	if bi, ok := rtdebug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// specSource tracks where the live spec came from and the last load error,
// for /configz.
type specSource struct {
	mu      sync.Mutex
	source  string // "flags", "file:<path>", "api"
	lastErr string
}

func (ss *specSource) set(source, lastErr string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.source = source
	ss.lastErr = lastErr
}

func (ss *specSource) get() (string, string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.source, ss.lastErr
}

// applySpecFile loads, parses and applies one spec file. Returns an error
// for unreadable or invalid specs; the switch keeps serving its previous
// state in that case.
func applySpecFile(sw *silkroad.Switch, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := silkroad.ParseSpec(data)
	if err != nil {
		return err
	}
	if _, err := sw.Apply(sw.Now(), spec); err != nil {
		return err
	}
	return nil
}

func main() {
	listen := flag.String("listen", ":9000", "UDP address to receive encapsulated packets on")
	vipFlag := flag.String("vip", "20.0.0.1:80", "VIP address:port to announce (TCP); ignored with -config")
	dipsFlag := flag.String("dips", "127.0.0.1:9001,127.0.0.1:9002", "comma-separated DIP address:port list; ignored with -config")
	configFlag := flag.String("config", "", "JSON ClusterSpec file; polled for changes and re-applied declaratively")
	configPoll := flag.Duration("config-poll", 2*time.Second, "poll interval for -config file changes")
	conns := flag.Int("conns", 1_000_000, "ConnTable provisioning")
	mode := flag.String("mode", "rewrite", "forwarding mode: rewrite (DNAT) or ipip (encapsulate, DSR)")
	selfAddr := flag.String("self", "192.0.2.1", "outer source address for -mode ipip")
	batch := flag.Int("batch", 64, "max datagrams per socket read batch")
	stats := flag.Duration("stats", 10*time.Second, "stats print interval")
	metricsAddr := flag.String("metrics", "", "HTTP address serving Prometheus metrics at /metrics (e.g. :9090); empty disables")
	debug := flag.Bool("debug", false, "serve /debug/silkroad/ (flight recorder, table dumps) and /debug/pprof/ on the -metrics listener")
	sampleEvery := flag.Int("trace-sample", 0, "with -debug, record every Nth packet in the trace ring (0 = armed flows only)")
	degHigh := flag.Float64("degraded-high", 0.95, "ConnTable occupancy fraction above which new flows are served stateless (0 disables degraded mode)")
	degLow := flag.Float64("degraded-low", 0.85, "occupancy fraction below which the switch leaves degraded mode")
	sloInterval := flag.Duration("slo-interval", time.Second, "SLO evaluation interval for /slo and /alertz (0 disables the evaluator)")
	flag.Parse()

	if *debug && *metricsAddr == "" {
		log.Fatal("silkroadd: -debug needs -metrics to serve the debug endpoints on")
	}

	cfg := silkroad.Defaults(*conns)
	cfg.Dataplane.DegradedHighWatermark = *degHigh
	cfg.Dataplane.DegradedLowWatermark = *degLow
	telemetry := silkroad.NewTelemetry()
	telemetry.SetBuildInfo(buildVersion(), runtime.Version())
	telemetry.SetProcessStart(float64(time.Now().UnixNano()) / 1e9)
	cfg.Telemetry = telemetry
	if *debug {
		cfg.FlightRecorder = silkroad.NewFlightRecorder(silkroad.FlightRecorderConfig{
			SampleEvery: *sampleEvery,
		})
	}
	if *sloInterval > 0 {
		cfg.SLO = &silkroad.SLOConfig{Interval: silkroad.Duration((*sloInterval).Nanoseconds())}
	}
	sw, err := silkroad.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap the desired state: either the -config spec file, or the
	// -vip/-dips flags folded into a one-VIP spec. Both go through the same
	// Apply path, so a later PUT /v1/spec or config reload diffs cleanly
	// against whatever we started from.
	src := &specSource{}
	if *configFlag != "" {
		if err := applySpecFile(sw, *configFlag); err != nil {
			log.Fatalf("silkroadd: -config %s: %v", *configFlag, err)
		}
		src.set("file:"+*configFlag, "")
	} else {
		var pool []string
		for _, d := range strings.Split(*dipsFlag, ",") {
			pool = append(pool, strings.TrimSpace(d))
		}
		spec := &silkroad.ClusterSpec{
			Version: silkroad.SpecVersion,
			VIPs:    []silkroad.VIPSpec{{VIP: *vipFlag, Pool: pool}},
		}
		if _, err := sw.Apply(sw.Now(), spec); err != nil {
			log.Fatalf("silkroadd: bad -vip/-dips: %v", err)
		}
		src.set("flags", "")
	}
	self, err := netip.ParseAddr(*selfAddr)
	if err != nil {
		log.Fatalf("silkroadd: bad -self: %v", err)
	}
	if *mode != "rewrite" && *mode != "ipip" {
		log.Fatalf("silkroadd: bad -mode %q", *mode)
	}
	for _, st := range sw.VIPStatuses() {
		log.Printf("silkroadd: announcing %s [%s] (%s mode, generation %d)",
			st.VIP, st.Condition, *mode, sw.SpecGeneration())
	}

	tun, err := silkroad.NewTunnel(silkroad.TunnelConfig{
		Switch:    sw,
		Listen:    *listen,
		Mode:      *mode,
		Self:      self,
		BatchSize: *batch,
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tun.Close()
	log.Printf("silkroadd: listening on %v", tun.LocalAddr())

	// Lifecycle: ctx is cancelled by SIGINT/SIGTERM. The event runtime, the
	// metrics server and the tunnel loop all key off it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The wall-clock event runtime: learning-filter drains, CPU insertions,
	// update transitions and aging run autonomously from here on.
	runDone := make(chan error, 1)
	go func() { runDone <- sw.Run(ctx) }()

	// Periodic stats as a runtime task (replaces the old unstoppable
	// time.Tick goroutine, which leaked its ticker for the process lifetime).
	stopStats := sw.Every(silkroad.Duration((*stats).Nanoseconds()), func(now silkroad.Time) {
		st := sw.Stats()
		log.Printf("stats: packets=%d hits=%d misses=%d conns=%d sram=%dB",
			st.Dataplane.Packets, st.Dataplane.ConnHits, st.Dataplane.ConnMisses,
			st.Connections, st.MemoryBytes)
	})

	// Config-file watch: poll the spec file's mtime on the switch runtime
	// and re-apply on change. A broken edit is logged and reported via
	// /configz; the switch keeps serving the last good spec.
	stopConfig := func() {}
	if *configFlag != "" {
		var lastMod time.Time
		if fi, err := os.Stat(*configFlag); err == nil {
			lastMod = fi.ModTime()
		}
		stopConfig = sw.Every(silkroad.Duration((*configPoll).Nanoseconds()), func(now silkroad.Time) {
			fi, err := os.Stat(*configFlag)
			if err != nil {
				return
			}
			if fi.ModTime().Equal(lastMod) {
				return
			}
			lastMod = fi.ModTime()
			if err := applySpecFile(sw, *configFlag); err != nil {
				log.Printf("silkroadd: config reload %s: %v", *configFlag, err)
				src.set("file:"+*configFlag, err.Error())
				return
			}
			src.set("file:"+*configFlag, "")
			log.Printf("silkroadd: applied %s (generation %d)", *configFlag, sw.SpecGeneration())
		})
	}

	var srv *http.Server
	if *metricsAddr != "" {
		if *debug {
			log.Printf("silkroadd: debug surface on http://%s/debug/silkroad/ (pprof at /debug/pprof/)", *metricsAddr)
		}
		srv = &http.Server{Addr: *metricsAddr, Handler: newMux(sw, telemetry, src, *debug)}
		go func() {
			log.Printf("silkroadd: serving Prometheus metrics on http://%s/metrics", *metricsAddr)
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("silkroadd: metrics server: %v", err)
			}
		}()
	}

	// The tunnel loop: batched reads feeding ProcessFrames, in-place
	// rewrite or encap at TX. Blocks until the context falls.
	if err := tun.Run(ctx); err != nil {
		log.Printf("silkroadd: tunnel: %v", err)
	}

	// Graceful shutdown: stop periodic work, wait for the runtime's final
	// catch-up pass, drain the metrics server, then report.
	log.Printf("silkroadd: shutting down")
	stopStats()
	stopConfig()
	if err := <-runDone; err != nil {
		log.Printf("silkroadd: runtime: %v", err)
	}
	if srv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("silkroadd: metrics server shutdown: %v", err)
		}
		cancel()
	}
	st := sw.Stats()
	ts := tun.Stats()
	fmt.Printf("final stats: packets=%d hits=%d misses=%d inserted=%d conns=%d rx=%d fwd=%d drop=%d\n",
		st.Dataplane.Packets, st.Dataplane.ConnHits, st.Dataplane.ConnMisses,
		st.Controlplane.Inserted, st.Connections, ts.RxPackets, ts.Forwarded, ts.Dropped)
	if err := silkroad.WritePrometheus(os.Stdout, telemetry.Snapshot(sw.Now())); err != nil {
		log.Printf("silkroadd: final metrics snapshot: %v", err)
	}
}
