package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"

	silkroad "repro"
	"repro/internal/netproto"
)

// testServer builds the daemon's HTTP surface around a deterministic
// manual-clock switch: no sockets, no packet loop, no wall time.
type testServer struct {
	sw  *silkroad.Switch
	reg *silkroad.Telemetry
	mux *http.ServeMux
	now silkroad.Time
}

func newTestServer(t *testing.T, mutate func(*silkroad.Config)) *testServer {
	t.Helper()
	cfg := silkroad.Defaults(100000)
	cfg.Clock = silkroad.NewManualClock(0)
	reg := silkroad.NewTelemetry()
	reg.SetBuildInfo("v0.0.0-test", "go-test")
	reg.SetProcessStart(1700000000)
	cfg.Telemetry = reg
	cfg.FlightRecorder = silkroad.NewFlightRecorder(silkroad.FlightRecorderConfig{})
	cfg.SLO = &silkroad.SLOConfig{Interval: 10 * silkroad.Millisecond}
	if mutate != nil {
		mutate(&cfg)
	}
	sw, err := silkroad.NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sw.Close() })
	spec := &silkroad.ClusterSpec{Version: silkroad.SpecVersion, VIPs: []silkroad.VIPSpec{
		{VIP: "20.0.0.1:80", Pool: []string{"10.0.0.1:20", "10.0.0.2:20"}},
	}}
	if _, err := sw.Apply(0, spec); err != nil {
		t.Fatal(err)
	}
	src := &specSource{}
	src.set("flags", "")
	return &testServer{sw: sw, reg: reg, mux: newMux(sw, reg, src, true)}
}

func (ts *testServer) get(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	ts.mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// tick advances virtual time by d through the switch runtime.
func (ts *testServer) tick(d silkroad.Duration) {
	ts.now += silkroad.Time(d)
	ts.sw.AdvanceTo(ts.now)
}

// syn runs one distinct-flow SYN through the data path.
func (ts *testServer) syn(i int) {
	pkt := &netproto.Packet{
		Tuple: netproto.FiveTuple{
			Src:     netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("20.0.0.1"),
			SrcPort: uint16(1024 + i%60000),
			DstPort: 80,
			Proto:   netproto.ProtoTCP,
		},
		TCPFlags: netproto.FlagSYN,
	}
	ts.sw.Process(ts.now, pkt)
}

func wantJSON(t *testing.T, w *httptest.ResponseRecorder, wantCode int) []byte {
	t.Helper()
	if w.Code != wantCode {
		t.Fatalf("status = %d, want %d (body %q)", w.Code, wantCode, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content-type = %q, want application/json", ct)
	}
	return w.Body.Bytes()
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	w := ts.get(t, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{"silkroad_build_info", "silkroad_process_start_time_seconds"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
}

// TestReadyzFlipsDegraded: /readyz answers 200 while the ConnTable is
// healthy and 503 with per-pipe detail once occupancy crosses the high
// watermark — the signal health checks drain the box on.
func TestReadyzFlipsDegraded(t *testing.T) {
	ts := newTestServer(t, func(cfg *silkroad.Config) {
		*cfg = silkroad.Defaults(64)
		cfg.Dataplane.DegradedHighWatermark = 0.3
		cfg.Dataplane.DegradedLowWatermark = 0.1
	})

	var st silkroad.DegradedState
	if err := json.Unmarshal(wantJSON(t, ts.get(t, "/readyz"), http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Degraded {
		t.Fatal("degraded before any load")
	}

	// Flood distinct flows until a miss evaluates the watermark as
	// exceeded; inserts land via the runtime between batches.
	for round := 0; round < 200 && !ts.sw.DegradedState().Degraded; round++ {
		for i := 0; i < 20; i++ {
			ts.syn(round*20 + i)
		}
		ts.tick(10 * silkroad.Millisecond)
	}

	w := ts.get(t, "/readyz")
	if err := json.Unmarshal(wantJSON(t, w, http.StatusServiceUnavailable), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Degraded || len(st.Pipes) == 0 {
		t.Fatalf("degraded state = %+v", st)
	}
}

func TestSpecEndpointMethodsAndValidation(t *testing.T) {
	ts := newTestServer(t, nil)

	w := ts.get(t, "/v1/spec")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/spec = %d, want 405", w.Code)
	}
	if allow := w.Header().Get("Allow"); allow != http.MethodPut {
		t.Fatalf("Allow = %q, want PUT", allow)
	}

	w = httptest.NewRecorder()
	ts.mux.ServeHTTP(w, httptest.NewRequest(http.MethodPut, "/v1/spec",
		strings.NewReader(`{"bogus": true}`)))
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid spec = %d, want 422 (body %q)", w.Code, w.Body.String())
	}

	w = httptest.NewRecorder()
	ts.mux.ServeHTTP(w, httptest.NewRequest(http.MethodPut, "/v1/spec", strings.NewReader(
		`{"version": "silkroad/v1", "vips": [{"vip": "20.0.0.1:80", "pool": ["10.0.0.9:20"]}]}`)))
	var applied struct {
		Generation uint64               `json:"generation"`
		Statuses   []silkroad.VIPStatus `json:"statuses"`
	}
	if err := json.Unmarshal(wantJSON(t, w, http.StatusOK), &applied); err != nil {
		t.Fatal(err)
	}
	if applied.Generation != 2 || len(applied.Statuses) != 1 {
		t.Fatalf("applied = %+v, want generation 2 with 1 status", applied)
	}
}

func TestConfigzShape(t *testing.T) {
	ts := newTestServer(t, nil)
	var cz struct {
		Source     string                `json:"source"`
		Generation uint64                `json:"generation"`
		Converged  bool                  `json:"converged"`
		Statuses   []silkroad.VIPStatus  `json:"statuses"`
		Spec       *silkroad.ClusterSpec `json:"spec"`
	}
	if err := json.Unmarshal(wantJSON(t, ts.get(t, "/configz"), http.StatusOK), &cz); err != nil {
		t.Fatal(err)
	}
	if cz.Source != "flags" || cz.Generation != 1 || len(cz.Statuses) != 1 || cz.Spec == nil {
		t.Fatalf("configz = %+v", cz)
	}
}

func TestSLOEndpoints(t *testing.T) {
	ts := newTestServer(t, nil)
	for round := 0; round < 8; round++ {
		for i := 0; i < 25; i++ {
			ts.syn(round*25 + i)
		}
		ts.tick(10 * silkroad.Millisecond)
	}

	var rep silkroad.SLOReport
	if err := json.Unmarshal(wantJSON(t, ts.get(t, "/slo"), http.StatusOK), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Evals == 0 || len(rep.Pipes) == 0 || len(rep.Alerts) == 0 {
		t.Fatalf("slo report = evals %d, %d pipes, %d alerts", rep.Evals, len(rep.Pipes), len(rep.Alerts))
	}

	var az struct {
		PageFiring bool                       `json:"page_firing"`
		Alerts     []silkroad.AlertStatus     `json:"alerts"`
		History    []silkroad.AlertTransition `json:"history"`
	}
	if err := json.Unmarshal(wantJSON(t, ts.get(t, "/alertz"), http.StatusOK), &az); err != nil {
		t.Fatal(err)
	}
	if len(az.Alerts) != len(silkroad.DefaultSLORules()) {
		t.Fatalf("alertz board = %d rules, want %d", len(az.Alerts), len(silkroad.DefaultSLORules()))
	}

	// Identical state must serialize identically: the JSON surface is
	// deterministic for scrapers and tests alike.
	a := ts.get(t, "/slo").Body.String()
	b := ts.get(t, "/slo").Body.String()
	if a != b {
		t.Error("/slo not byte-deterministic across identical reads")
	}
}

func TestSLODisabledAnswers404(t *testing.T) {
	ts := newTestServer(t, func(cfg *silkroad.Config) {
		cfg.SLO = nil
	})
	for _, path := range []string{"/slo", "/alertz"} {
		if w := ts.get(t, path); w.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, w.Code)
		}
	}
}

func TestDebugIntentEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	w := ts.get(t, "/debug/silkroad/intent")
	body := wantJSON(t, w, http.StatusOK)
	var iv struct {
		Generation uint64               `json:"generation"`
		Statuses   []silkroad.VIPStatus `json:"statuses"`
	}
	if err := json.Unmarshal(body, &iv); err != nil {
		t.Fatalf("intent view: %v (body %q)", err, body)
	}
	if iv.Generation != 1 {
		t.Fatalf("intent generation = %d, want 1", iv.Generation)
	}
}
