package main

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/handoff"
	"repro/internal/netproto"
)

func snapVIP() dataplane.VIP {
	return dataplane.VIP{Addr: netip.MustParseAddr("20.0.0.1"), Port: 80, Proto: netproto.ProtoTCP}
}

func snapEntry(i int, ver uint32, dip string) handoff.Entry {
	v := snapVIP()
	return handoff.Entry{
		Tuple: netproto.FiveTuple{
			Src: netip.MustParseAddr("1.2.3.4"), SrcPort: uint16(1000 + i),
			Dst: v.Addr, DstPort: v.Port, Proto: v.Proto,
		},
		KeyHash: uint64(i), Digest: uint32(0xbeef0000 + i),
		VIP: v, Version: ver,
		DIP:  netip.MustParseAddrPort(dip),
		Pool: []dataplane.DIP{netip.MustParseAddrPort(dip)},
	}
}

func writeSnap(t *testing.T, name string, s *handoff.Snapshot) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSnapshotPrint(t *testing.T) {
	snap := &handoff.Snapshot{TakenAt: 50_000_000, Cursor: 42, Pipes: 2, Entries: []handoff.Entry{
		snapEntry(0, 1, "10.0.0.1:20"),
		snapEntry(1, 1, "10.0.0.2:20"),
		snapEntry(2, 3, "10.0.0.3:20"),
	}}
	path := writeSnap(t, "a.json", snap)

	var buf bytes.Buffer
	if err := snapshotCmd(&buf, []string{path}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"3 entries, 2 pipe(s), cursor 42, taken 50ms",
		"20.0.0.1:80/tcp: 3 conns",
		"v1   2 conns",
		"v3   1 conns",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotDiff(t *testing.T) {
	a := &handoff.Snapshot{Pipes: 1, Entries: []handoff.Entry{
		snapEntry(0, 1, "10.0.0.1:20"),
		snapEntry(1, 1, "10.0.0.2:20"), // divergent DIP in b
		snapEntry(2, 1, "10.0.0.3:20"), // missing from b
	}}
	b := &handoff.Snapshot{Pipes: 1, Entries: []handoff.Entry{
		snapEntry(0, 1, "10.0.0.1:20"),
		snapEntry(1, 2, "10.0.0.9:20"),
		snapEntry(3, 1, "10.0.0.4:20"), // only in b
	}}
	pa, pb := writeSnap(t, "a.json", a), writeSnap(t, "b.json", b)

	var buf bytes.Buffer
	err := snapshotCmd(&buf, []string{pa, pb})
	if err == nil {
		t.Fatal("divergent DIPs should make the diff fail")
	}
	out := buf.String()
	for _, want := range []string{
		"diff: 1 only in a, 1 only in b, 1 divergent",
		"a: v1->10.0.0.2:20  b: v2->10.0.0.9:20",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotDiffIdentical(t *testing.T) {
	s := &handoff.Snapshot{Pipes: 1, Entries: []handoff.Entry{snapEntry(0, 1, "10.0.0.1:20")}}
	pa, pb := writeSnap(t, "a.json", s), writeSnap(t, "b.json", s)
	var buf bytes.Buffer
	if err := snapshotCmd(&buf, []string{pa, pb}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diff: 0 only in a, 0 only in b, 0 divergent") {
		t.Fatalf("unexpected diff output:\n%s", buf.String())
	}
}

func TestSnapshotBadArgs(t *testing.T) {
	if err := snapshotCmd(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := snapshotCmd(&bytes.Buffer{}, []string{"/nonexistent.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
