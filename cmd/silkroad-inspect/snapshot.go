package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/handoff"
)

// snapshotCmd implements the file-based `snapshot` subcommand: with one
// argument it pretty-prints a conn-table snapshot (Switch.Export JSON);
// with two it diffs them — per-VIP entry counts, the pinned-version
// histogram, and the divergent digests that would break PCC if the two
// tables ever served the same traffic.
func snapshotCmd(w io.Writer, args []string) error {
	switch len(args) {
	case 1:
		snap, err := loadSnapshot(args[0])
		if err != nil {
			return err
		}
		printSnapshot(w, args[0], snap)
		return nil
	case 2:
		a, err := loadSnapshot(args[0])
		if err != nil {
			return err
		}
		b, err := loadSnapshot(args[1])
		if err != nil {
			return err
		}
		printSnapshot(w, args[0], a)
		printSnapshot(w, args[1], b)
		return diffSnapshots(w, a, b)
	default:
		return fmt.Errorf("snapshot wants one file (print) or two (diff)")
	}
}

func loadSnapshot(path string) (*handoff.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap handoff.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

func printSnapshot(w io.Writer, name string, s *handoff.Snapshot) {
	fmt.Fprintf(w, "%s: %d entries, %d pipe(s), cursor %d, taken %s\n",
		name, len(s.Entries), s.Pipes, s.Cursor, time.Duration(s.TakenAt))

	// Per-VIP entry counts and the version histogram: how much of the
	// table is pinned to versions other than the most popular one is the
	// first thing to look at before a migration.
	type verKey struct {
		vip string
		ver uint32
	}
	perVIP := map[string]int{}
	perVer := map[verKey]int{}
	for _, e := range s.Entries {
		v := e.VIP.String()
		perVIP[v]++
		perVer[verKey{v, e.Version}]++
	}
	for _, vip := range sortedKeys(perVIP) {
		fmt.Fprintf(w, "  %s: %d conns\n", vip, perVIP[vip])
		var vers []verKey
		for k := range perVer {
			if k.vip == vip {
				vers = append(vers, k)
			}
		}
		sort.Slice(vers, func(i, j int) bool { return vers[i].ver < vers[j].ver })
		for _, k := range vers {
			fmt.Fprintf(w, "    v%-3d %d conns\n", k.ver, perVer[k])
		}
	}
}

// diffSnapshots compares two snapshots by tuple: entries present on one
// side only, and — the PCC-relevant case — tuples present on both whose
// resolved DIP diverges.
func diffSnapshots(w io.Writer, a, b *handoff.Snapshot) error {
	byTuple := func(s *handoff.Snapshot) map[string]handoff.Entry {
		m := make(map[string]handoff.Entry, len(s.Entries))
		for _, e := range s.Entries {
			m[e.Tuple.String()] = e
		}
		return m
	}
	am, bm := byTuple(a), byTuple(b)

	var onlyA, onlyB, divergent []string
	for t, ae := range am {
		be, ok := bm[t]
		if !ok {
			onlyA = append(onlyA, t)
			continue
		}
		if ae.DIP != be.DIP {
			divergent = append(divergent, fmt.Sprintf(
				"%s  digest=%#08x  a: v%d->%s  b: v%d->%s",
				t, ae.Digest, ae.Version, ae.DIP, be.Version, be.DIP))
		}
	}
	for t := range bm {
		if _, ok := am[t]; !ok {
			onlyB = append(onlyB, t)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	sort.Strings(divergent)

	fmt.Fprintf(w, "diff: %d only in a, %d only in b, %d divergent\n",
		len(onlyA), len(onlyB), len(divergent))
	for _, t := range onlyA {
		fmt.Fprintf(w, "  -%s\n", t)
	}
	for _, t := range onlyB {
		fmt.Fprintf(w, "  +%s\n", t)
	}
	for _, d := range divergent {
		fmt.Fprintf(w, "  !%s\n", d)
	}
	if len(divergent) > 0 {
		return fmt.Errorf("%d connection(s) map to different DIPs", len(divergent))
	}
	return nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
