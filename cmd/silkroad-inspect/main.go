// Command silkroad-inspect queries a running silkroadd's debug surface
// (-debug flag) and pretty-prints what it finds: per-flow pipeline traces,
// the control-plane event journal, table dumps, and SRAM occupancy.
//
//	silkroad-inspect -addr localhost:9090 trace 1.2.3.4:1234->20.0.0.1:80/tcp
//	silkroad-inspect -addr localhost:9090 journal
//	silkroad-inspect -addr localhost:9090 sram
//	silkroad-inspect -addr localhost:9090 -watch 1s
//
// With -watch the tool becomes a top-style live view: every interval it
// polls the daemon's /slo report (windowed SLIs, occupancy forecasts, the
// alert board) and the /debug/silkroad/ SRAM heatmap, and redraws.
//
// Subcommands:
//
//	trace <five-tuple>   arm the flow (if not already) and print its trace
//	arm <five-tuple>     arm a flow filter and return
//	disarm <five-tuple>  disarm a flow filter
//	packets              dump the packet-trace ring
//	journal              print the control-plane event timeline
//	conntable            dump every ConnTable entry per pipe
//	vips                 list VIPs with versions and pools per pipe
//	pending              show the learning filter's pending set per pipe
//	sram                 per-stage occupancy heatmap and SRAM breakdown
//	snapshot <a> [b]     print a conn-table snapshot (Switch.Export JSON);
//	                     with two files, diff them (exit 1 on divergent DIPs)
//
// Five-tuples use the trace-record rendering "src:port->dst:port/proto"
// (also accepted with a "tcp:"/"udp:" prefix). Remember to quote or escape
// the "->" in most shells.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	silkroad "repro"
	"repro/internal/netproto"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: silkroad-inspect [-addr host:port] <command> [args]

commands:
  trace <five-tuple>   arm the flow (if needed) and print its recorded path
  arm <five-tuple>     arm a flow filter
  disarm <five-tuple>  disarm a flow filter
  packets              dump the packet-trace ring
  journal              print the control-plane event timeline
  conntable            dump ConnTable entries per pipe
  vips                 list VIPs with versions and pools
  pending              show the learning filter's pending set
  sram                 per-stage occupancy and SRAM breakdown
  snapshot <a> [b]     print a conn-table snapshot file; with two, diff them

flags:
  -watch <interval>    top-style live view of /slo + /debug/silkroad/
                       (SLIs, occupancy forecasts, alert board); no command
  -watch-count <n>     stop the live view after n frames (0 = forever)

five-tuple syntax: "src:port->dst:port/tcp" (quote the ->)
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "localhost:9090", "silkroadd debug listener (its -metrics address)")
	watch := flag.Duration("watch", 0, "top-style live view: poll /slo and /debug/silkroad/ every interval (e.g. -watch 1s)")
	watchCount := flag.Int("watch-count", 0, "with -watch, stop after N frames (0 = until interrupted)")
	flag.Usage = usage
	flag.Parse()
	if *watch > 0 {
		clear := *watchCount == 0 // bounded runs are for scripts/tests: keep frames appendable
		if err := runWatch(os.Stdout, "http://"+*addr, *watch, *watchCount, clear); err != nil {
			fmt.Fprintf(os.Stderr, "silkroad-inspect: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() < 1 {
		usage()
	}
	c := client{base: "http://" + *addr + "/debug/silkroad/"}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "trace":
		err = c.trace(args)
	case "arm", "disarm":
		err = c.armDisarm(cmd, args)
	case "packets":
		err = c.packets()
	case "journal":
		err = c.journal()
	case "conntable":
		err = c.conntable()
	case "vips":
		err = c.vips()
	case "pending":
		err = c.pending()
	case "sram":
		err = c.sram()
	case "snapshot":
		err = snapshotCmd(os.Stdout, args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "silkroad-inspect: %v\n", err)
		os.Exit(1)
	}
}

type client struct{ base string }

// get fetches one endpoint and decodes the JSON reply into v.
func (c client) get(endpoint string, query url.Values, v any) error {
	u := c.base + endpoint
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", endpoint, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func flowArg(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("want exactly one five-tuple argument")
	}
	// Validate locally for a friendlier error than the server's 400.
	t, err := netproto.ParseFiveTuple(args[0])
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

type traceReply struct {
	Flow    string                  `json:"flow"`
	Armed   bool                    `json:"armed"`
	Records []silkroad.PacketRecord `json:"records"`
}

func (c client) trace(args []string) error {
	flow, err := flowArg(args)
	if err != nil {
		return err
	}
	q := url.Values{"flow": {flow}}
	var tr traceReply
	if err := c.get("trace", q, &tr); err != nil {
		return err
	}
	if !tr.Armed {
		// Arm so the *next* packets of this flow get recorded, then report
		// whatever is already in the ring (sampled packets may be there).
		var armReply struct{}
		if err := c.get("arm", q, &armReply); err != nil {
			return err
		}
		fmt.Printf("armed %s (was not armed; future packets will be traced)\n", tr.Flow)
	}
	fmt.Printf("flow %s: %d record(s)\n", tr.Flow, len(tr.Records))
	for _, r := range tr.Records {
		printPacketRecord(r)
	}
	return nil
}

func printPacketRecord(r silkroad.PacketRecord) {
	ts := time.Duration(r.Now).String()
	switch r.Kind {
	case "insert":
		fmt.Printf("  %12s  pipe%d  CPU insert %-14s ver=%d queue=%d (arrived %s)\n",
			ts, r.Pipe, r.Verdict, r.Version, r.QueueDepth, time.Duration(r.ArrivedAt))
	default:
		path := make([]string, 0, 6)
		if r.ConnHit {
			path = append(path, fmt.Sprintf("conntable[stage %d]", r.Stage))
		} else {
			path = append(path, "conntable miss")
		}
		if r.TransitHit {
			path = append(path, "transit hit")
		}
		if r.Learned {
			path = append(path, "learned")
		}
		if r.Meter != "" {
			path = append(path, "meter="+r.Meter)
		}
		path = append(path, fmt.Sprintf("ver=%d", r.Version))
		if r.DIP != "" {
			path = append(path, "dip="+r.DIP)
		}
		if r.Wire {
			path = append(path, "wire")
		}
		fmt.Printf("  %12s  pipe%d  %-10s %s  (hash=%#x digest=%#x len=%dB)\n",
			ts, r.Pipe, r.Verdict, strings.Join(path, " "), r.KeyHash, r.Digest, r.WireLen)
	}
}

func (c client) armDisarm(cmd string, args []string) error {
	flow, err := flowArg(args)
	if err != nil {
		return err
	}
	var reply struct {
		Flow  string `json:"flow"`
		Armed bool   `json:"armed"`
	}
	if err := c.get(cmd, url.Values{"flow": {flow}}, &reply); err != nil {
		return err
	}
	state := "disarmed"
	if reply.Armed {
		state = "armed"
	}
	fmt.Printf("%s %s\n", state, reply.Flow)
	return nil
}

func (c client) packets() error {
	var reply struct {
		Total   uint64                  `json:"total"`
		Records []silkroad.PacketRecord `json:"records"`
	}
	if err := c.get("packets", nil, &reply); err != nil {
		return err
	}
	fmt.Printf("packet ring: %d record(s) resident, %d ever written\n", len(reply.Records), reply.Total)
	for _, r := range reply.Records {
		fmt.Printf("  [%d] %s\n", r.Seq, r.Flow)
		printPacketRecord(r)
	}
	return nil
}

func (c client) journal() error {
	var reply struct {
		Total   uint64                   `json:"total"`
		Records []silkroad.JournalRecord `json:"records"`
	}
	if err := c.get("journal", nil, &reply); err != nil {
		return err
	}
	fmt.Printf("journal: %d record(s) resident, %d ever written\n", len(reply.Records), reply.Total)
	for _, r := range reply.Records {
		ts := time.Duration(r.Now).String()
		switch r.Kind {
		case "pool_update":
			fmt.Printf("  [%d] %12s  pipe%d  pool %-10s %s  v%d->v%d  %v -> %v\n",
				r.Seq, ts, r.Pipe, r.Step, r.VIP, r.PrevVersion, r.Version, r.Before, r.After)
		case "cuckoo":
			status := "ok"
			if !r.OK {
				status = "FAILED"
			}
			fmt.Printf("  [%d] %12s  pipe%d  cuckoo %-8s hash=%#x digest=%#x moves=%d reloc=%d %s (%d/%d)\n",
				r.Seq, ts, r.Pipe, r.Op, r.KeyHash, r.Digest, r.Moves, r.Relocations, status, r.Len, r.Capacity)
		case "learn_flush":
			full := ""
			if r.Full {
				full = " (filter full)"
			}
			fmt.Printf("  [%d] %12s  pipe%d  learn flush: %d event(s)%s\n", r.Seq, ts, r.Pipe, r.Batch, full)
		default:
			fmt.Printf("  [%d] %12s  pipe%d  %s\n", r.Seq, ts, r.Pipe, r.Kind)
		}
	}
	return nil
}

func (c client) conntable() error {
	var reply []struct {
		Pipe     int `json:"pipe"`
		Len      int `json:"len"`
		Capacity int `json:"capacity"`
		Entries  []struct {
			Stage   int    `json:"stage"`
			Bucket  int    `json:"bucket"`
			Way     int    `json:"way"`
			KeyHash uint64 `json:"key_hash"`
			Digest  uint32 `json:"digest"`
			Value   uint32 `json:"value"`
		} `json:"entries"`
	}
	if err := c.get("conntable", nil, &reply); err != nil {
		return err
	}
	for _, p := range reply {
		fmt.Printf("pipe %d: %d/%d entries\n", p.Pipe, p.Len, p.Capacity)
		for _, e := range p.Entries {
			fmt.Printf("  stage %d bucket %4d way %d  hash=%#016x digest=%#08x ver=%d\n",
				e.Stage, e.Bucket, e.Way, e.KeyHash, e.Digest, e.Value)
		}
	}
	return nil
}

func (c client) vips() error {
	var reply []struct {
		Pipe int `json:"pipe"`
		VIPs []struct {
			VIP            string `json:"vip"`
			CurrentVersion uint32 `json:"current_version"`
			InUpdate       bool   `json:"in_update"`
			Versions       []struct {
				Version uint32   `json:"version"`
				Pool    []string `json:"pool"`
			} `json:"versions"`
		} `json:"vips"`
	}
	if err := c.get("vips", nil, &reply); err != nil {
		return err
	}
	for _, p := range reply {
		fmt.Printf("pipe %d:\n", p.Pipe)
		for _, v := range p.VIPs {
			upd := ""
			if v.InUpdate {
				upd = "  [update in progress]"
			}
			fmt.Printf("  %s  current=v%d%s\n", v.VIP, v.CurrentVersion, upd)
			for _, ver := range v.Versions {
				marker := " "
				if ver.Version == v.CurrentVersion {
					marker = "*"
				}
				fmt.Printf("   %s v%-3d %s\n", marker, ver.Version, strings.Join(ver.Pool, ", "))
			}
		}
	}
	return nil
}

func (c client) pending() error {
	var reply []struct {
		Pipe    int `json:"pipe"`
		Pending []struct {
			Flow    string `json:"flow"`
			KeyHash uint64 `json:"key_hash"`
			Version uint32 `json:"version"`
			At      int64  `json:"at_ns"`
		} `json:"pending"`
	}
	if err := c.get("pending", nil, &reply); err != nil {
		return err
	}
	for _, p := range reply {
		fmt.Printf("pipe %d: %d pending learn(s)\n", p.Pipe, len(p.Pending))
		for _, e := range p.Pending {
			fmt.Printf("  %12s  %s  hash=%#x ver=%d\n",
				time.Duration(e.At), e.Flow, e.KeyHash, e.Version)
		}
	}
	return nil
}

func (c client) sram() error {
	var reply []struct {
		Pipe   int `json:"pipe"`
		Stages []struct {
			Stage int `json:"stage"`
			Used  int `json:"used"`
			Slots int `json:"slots"`
		} `json:"stages"`
		Memory struct {
			ConnTableBytes   int
			DIPPoolBytes     int
			TransitBytes     int
			LearnFilterBytes int
			VIPTableBytes    int
		} `json:"memory"`
		TotalBytes   int     `json:"total_bytes"`
		OccupancyPct float64 `json:"occupancy_pct"`
	}
	if err := c.get("sram", nil, &reply); err != nil {
		return err
	}
	for _, p := range reply {
		fmt.Printf("pipe %d: ConnTable %.1f%% full, SRAM %s\n",
			p.Pipe, p.OccupancyPct, byteCount(p.TotalBytes))
		for _, s := range p.Stages {
			pct := 0.0
			if s.Slots > 0 {
				pct = float64(s.Used) / float64(s.Slots)
			}
			fmt.Printf("  stage %d %s %6d/%d (%.1f%%)\n", s.Stage, bar(pct, 30), s.Used, s.Slots, 100*pct)
		}
		m := p.Memory
		fmt.Printf("  conntable=%s dippool=%s transit=%s learnfilter=%s viptable=%s\n",
			byteCount(m.ConnTableBytes), byteCount(m.DIPPoolBytes), byteCount(m.TransitBytes),
			byteCount(m.LearnFilterBytes), byteCount(m.VIPTableBytes))
	}
	return nil
}

// bar renders a fixed-width occupancy bar for the SRAM heatmap.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac * float64(width))
	return "[" + strings.Repeat("#", full) + strings.Repeat(".", width-full) + "]"
}

func byteCount(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
