// The -watch mode: a top-style live view of a running silkroadd, polling
// the daemon's /slo report and /debug/silkroad/sram heatmap and rendering
// windowed SLIs, per-pipe occupancy with time-to-exhaustion, and the alert
// board on every interval.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	silkroad "repro"
)

// watchState carries what the previous poll saw, so the view can render
// interval deltas alongside the windowed rates.
type watchState struct {
	haveLast  bool
	lastEvals uint64
	lastNow   int64
}

// sramPipe is the slice of /debug/silkroad/sram the watch view renders.
type sramPipe struct {
	Pipe         int     `json:"pipe"`
	TotalBytes   int     `json:"total_bytes"`
	OccupancyPct float64 `json:"occupancy_pct"`
}

// pollWatch fetches one round of state from the daemon. The SLO report is
// mandatory (watch exists to render it); the SRAM view is best-effort —
// silkroadd only serves /debug/silkroad/ with -debug.
func pollWatch(base string) (*silkroad.SLOReport, []sramPipe, error) {
	var rep silkroad.SLOReport
	if err := getJSON(base+"/slo", &rep); err != nil {
		return nil, nil, err
	}
	var sram []sramPipe
	if err := getJSON(base+"/debug/silkroad/sram", &sram); err != nil {
		sram = nil
	}
	return &rep, sram, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderWatch writes one full frame of the live view.
func renderWatch(w io.Writer, rep *silkroad.SLOReport, sram []sramPipe, st *watchState, clear bool) {
	if clear {
		fmt.Fprint(w, "\033[H\033[2J")
	}
	dEvals := rep.Evals
	if st.haveLast {
		dEvals = rep.Evals - st.lastEvals
	}
	fmt.Fprintf(w, "silkroad slo  t=%-14s evals=%d (+%d)  degraded_total=%.1fs\n",
		time.Duration(rep.Now).String(), rep.Evals, dEvals, rep.DegradedSeconds)
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s %10s %8s\n",
		"window", "pps", "newflows/s", "pend p99", "insert prs", "digest fp", "pcc")
	for _, row := range []struct {
		name string
		s    silkroad.SLOSignals
	}{{"fast", rep.Fast}, {"slow", rep.Slow}} {
		fmt.Fprintf(w, "%-6s %12.0f %12.0f %11.3fms %12.0f %10.4f %8.4f\n",
			row.name, row.s.PPS, row.s.NewFlowRate, row.s.PendingP99*1e3,
			row.s.InsertPressure, row.s.DigestFPRate, row.s.PCCRisk)
	}

	fmt.Fprintf(w, "\npipes (occupancy, fitted slope, time-to-exhaustion):\n")
	for _, p := range rep.Pipes {
		tte := "-"
		if p.TTESeconds >= 0 {
			tte = fmt.Sprintf("%.1fs", p.TTESeconds)
		}
		deg := ""
		if p.Degraded {
			deg = "  DEGRADED"
		}
		fmt.Fprintf(w, "  pipe%-2d %s %6.1f%%  %d/%d  slope=%+.0f/s  tte=%s%s\n",
			p.Pipe, bar(p.FillFrac, 24), 100*p.FillFrac, p.Entries, p.Capacity,
			p.SlopePerSec, tte, deg)
	}
	for _, sp := range sram {
		fmt.Fprintf(w, "  pipe%-2d sram=%s (%.1f%% conntable)\n",
			sp.Pipe, byteCount(sp.TotalBytes), sp.OccupancyPct)
	}

	if len(rep.VIPs) > 0 {
		fmt.Fprintf(w, "\nvips:\n")
		for _, v := range rep.VIPs {
			fmt.Fprintf(w, "  %-24s pps=%-10.0f newflows/s=%-8.0f hit=%.3f\n",
				v.VIP, v.PPS, v.NewFlowRate, v.ConnHitRate)
		}
	}

	fmt.Fprintf(w, "\nalerts:\n")
	alerts := append([]silkroad.AlertStatus(nil), rep.Alerts...)
	sort.Slice(alerts, func(i, j int) bool { return alerts[i].Rule < alerts[j].Rule })
	for _, a := range alerts {
		marker := " "
		switch a.State {
		case "firing":
			marker = "!"
		case "pending":
			marker = "?"
		}
		fmt.Fprintf(w, "  %s %-22s %-8s %-8s value=%-10.3f threshold=%.3f cursor=%d\n",
			marker, a.Rule, a.Severity, a.State, a.Value, a.Threshold, a.Cursor)
	}

	st.haveLast = true
	st.lastEvals = rep.Evals
	st.lastNow = int64(rep.Now)
}

// runWatch polls and renders every interval. iterations bounds the loop
// for tests; 0 means run until the process is interrupted. clear controls
// the ANSI home+wipe between frames (off when not writing to a terminal).
func runWatch(w io.Writer, base string, interval time.Duration, iterations int, clear bool) error {
	var st watchState
	for i := 0; iterations == 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		rep, sram, err := pollWatch(base)
		if err != nil {
			return err
		}
		renderWatch(w, rep, sram, &st, clear)
	}
	return nil
}
