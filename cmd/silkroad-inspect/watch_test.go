package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	silkroad "repro"
)

// TestWatchRendersFrames drives the live view against a fake daemon: two
// frames, checking the SLI table, forecast rows, alert board and the
// inter-poll eval delta all render.
func TestWatchRendersFrames(t *testing.T) {
	var polls atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		n := polls.Add(1)
		rep := silkroad.SLOReport{
			Now:   silkroad.Time(int64(n) * 1e9),
			Evals: 10 * n,
			Fast:  silkroad.SLOSignals{Seconds: 1, PPS: 5000, NewFlowRate: 120, PendingP99: 0.0021},
			Slow:  silkroad.SLOSignals{Seconds: 30, PPS: 4800, NewFlowRate: 110, PendingP99: 0.0018},
			Pipes: []silkroad.SLOPipeForecast{
				{Pipe: 0, Entries: 700, Capacity: 1000, FillFrac: 0.7, SlopePerSec: 25, TTESeconds: 12},
				{Pipe: 1, Entries: 100, Capacity: 1000, FillFrac: 0.1, TTESeconds: -1},
			},
			Alerts: []silkroad.AlertStatus{
				{Rule: "conntable-exhaustion", Severity: "page", State: "firing", Value: 2.5, Threshold: 1, Cursor: 42},
				{Rule: "pending-p99", Severity: "ticket", State: "inactive", Threshold: 0.005},
			},
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/debug/silkroad/sram", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode([]sramPipe{{Pipe: 0, TotalBytes: 4096, OccupancyPct: 70}})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out strings.Builder
	if err := runWatch(&out, srv.URL, 0, 2, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"evals=10 (+10)",         // first frame: no previous poll, delta = total
		"evals=20 (+10)",         // second frame: true inter-poll delta
		"tte=12.0s",              // forecast with a predicted exhaustion
		"tte=-",                  // flat pipe: no prediction
		"! conntable-exhaustion", // firing page alert marked
		"cursor=42",              // journal cursor linkage
		"pipe0  sram=4.0KiB",     // debug SRAM row
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame output lacks %q\n---\n%s", want, got)
		}
	}
}

// TestWatchSurfacesSLOError: a daemon without the SLO evaluator answers
// 404 on /slo; watch must fail loudly instead of rendering empty frames.
func TestWatchSurfacesSLOError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "slo evaluator disabled", http.StatusNotFound)
	}))
	defer srv.Close()
	err := runWatch(&strings.Builder{}, srv.URL, 0, 1, false)
	if err == nil || !strings.Contains(err.Error(), "slo evaluator disabled") {
		t.Fatalf("err = %v, want the daemon's 404 body surfaced", err)
	}
}
