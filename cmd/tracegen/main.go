// Command tracegen synthesizes cluster traces (the workload package's
// fleet) as JSON for external analysis, and can emit a live stream of raw
// IPv4/TCP packets over UDP to exercise cmd/silkroadd.
//
//	tracegen -seed 7 > fleet.json
//	tracegen -emit 127.0.0.1:9000 -vip 20.0.0.1:80 -rate 1000 -duration 10s
package main

import (
	"encoding/json"
	"flag"
	"log"
	"math/rand"
	"net"
	"net/netip"
	"os"
	"time"

	"repro/internal/netproto"
	"repro/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "fleet synthesis seed")
	emit := flag.String("emit", "", "if set, stream packets to this UDP address instead of printing JSON")
	vipFlag := flag.String("vip", "20.0.0.1:80", "VIP to address packets to (with -emit)")
	rate := flag.Float64("rate", 1000, "new connections per second (with -emit)")
	duration := flag.Duration("duration", 10*time.Second, "emission duration (with -emit)")
	flag.Parse()

	if *emit == "" {
		fleet := workload.Fleet(*seed)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fleet); err != nil {
			log.Fatal(err)
		}
		return
	}

	vip, err := netip.ParseAddrPort(*vipFlag)
	if err != nil {
		log.Fatalf("tracegen: bad -vip: %v", err)
	}
	conn, err := net.Dial("udp", *emit)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewSource(*seed))
	interval := time.Duration(float64(time.Second) / *rate)
	deadline := time.Now().Add(*duration)
	var buf []byte
	sent := 0
	for i := 0; time.Now().Before(deadline); i++ {
		p := netproto.Packet{
			Tuple: netproto.FiveTuple{
				Src:     netip.AddrFrom4([4]byte{192, 168, byte(i >> 8), byte(i)}),
				Dst:     vip.Addr(),
				SrcPort: uint16(1024 + rng.Intn(60000)),
				DstPort: vip.Port(),
				Proto:   netproto.ProtoTCP,
			},
			TCPFlags: netproto.FlagSYN,
			Payload:  []byte("tracegen"),
		}
		buf, err = p.Marshal(buf[:0])
		if err != nil {
			log.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			log.Fatal(err)
		}
		sent++
		time.Sleep(interval)
	}
	log.Printf("tracegen: sent %d packets to %s", sent, *emit)
}
