// Command silkroad-bench regenerates the tables and figures of the
// SilkRoad paper (SIGCOMM 2017) from this repository's implementation.
//
// Usage:
//
//	silkroad-bench                 # run every experiment at default scale
//	silkroad-bench -run fig16      # one experiment
//	silkroad-bench -list           # list experiment ids
//	silkroad-bench -scale 2 -seed 7
//
// Scale stretches simulation lengths and sample counts; shapes are stable
// across scales (see EXPERIMENTS.md for the reduced-scale defaults).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	scale := flag.Float64("scale", 1.0, "run-time scale knob (>=0.05)")
	seed := flag.Int64("seed", 1, "master random seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metrics := flag.Bool("metrics", false, "attach a telemetry registry and dump snapshot JSON next to BENCH files")
	gate := flag.Bool("gate", false, "fail (exit 1) when the pipes benchmark regresses against its recorded trajectory")
	flag.Parse()
	experiments.CollectTelemetry = *metrics

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Desc)
		}
		return
	}
	if *scale < 0.05 {
		fmt.Fprintln(os.Stderr, "silkroad-bench: scale must be >= 0.05")
		os.Exit(2)
	}

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "silkroad-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(*scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "silkroad-bench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if rep.ArtifactName != "" {
			if err := os.WriteFile(rep.ArtifactName, rep.Artifact, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "silkroad-bench: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", rep.ArtifactName)
		}
		if rep.MetricsName != "" {
			if err := os.WriteFile(rep.MetricsName, rep.Metrics, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "silkroad-bench: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", rep.MetricsName)
		}
		if *gate && r.ID == "pipes" {
			var res experiments.PipesBenchResult
			if err := json.Unmarshal(rep.Artifact, &res); err != nil {
				fmt.Fprintf(os.Stderr, "silkroad-bench: gate: %v\n", err)
				os.Exit(1)
			}
			if err := experiments.GatePipes(res); err != nil {
				fmt.Fprintf(os.Stderr, "silkroad-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("(pipes perf gate passed)")
		}
		fmt.Printf("(%s took %.1fs)\n\n", r.ID, time.Since(start).Seconds())
	}
}
