package silkroad_test

import (
	"fmt"
	"net/netip"

	silkroad "repro"
)

// The canonical usage: announce a VIP, balance a connection, update the
// pool with per-connection consistency.
func Example() {
	sw, err := silkroad.NewSwitch(silkroad.Defaults(100_000))
	if err != nil {
		panic(err)
	}
	vip := silkroad.NewVIP("20.0.0.1", 80, silkroad.TCP)
	if err := sw.AddVIP(0, vip, silkroad.Pool("10.0.0.1:20", "10.0.0.2:20")); err != nil {
		panic(err)
	}

	conn := silkroad.FiveTuple{
		Src:     netip.MustParseAddr("1.2.3.4"),
		Dst:     vip.Addr,
		SrcPort: 1234, DstPort: 80, Proto: silkroad.TCP,
	}
	first := sw.Process(0, &silkroad.Packet{Tuple: conn, TCPFlags: 0x02})

	// Let the CPU install the ConnTable entry, then update the pool.
	sw.Advance(silkroad.Time(5 * silkroad.Millisecond))
	sw.AddDIP(silkroad.Time(5*silkroad.Millisecond), vip, silkroad.AddrPort("10.0.0.3:20"))

	later := sw.Process(silkroad.Time(20*silkroad.Millisecond), &silkroad.Packet{Tuple: conn, TCPFlags: 0x10})
	fmt.Println("same DIP across the update:", first.DIP == later.DIP)
	fmt.Println("served from ConnTable:", later.ConnHit)
	// Output:
	// same DIP across the update: true
	// served from ConnTable: true
}

// Forward rewrites raw packets in place — the full data path.
func ExampleSwitch_Forward() {
	sw, _ := silkroad.NewSwitch(silkroad.Defaults(1000))
	vip := silkroad.NewVIP("20.0.0.1", 80, silkroad.TCP)
	sw.AddVIP(0, vip, silkroad.Pool("10.0.0.9:8080"))

	pkt := &silkroad.Packet{
		Tuple: silkroad.FiveTuple{
			Src:     netip.MustParseAddr("1.2.3.4"),
			Dst:     vip.Addr,
			SrcPort: 999, DstPort: 80, Proto: silkroad.TCP,
		},
		TCPFlags: 0x02,
	}
	raw, _ := pkt.Marshal(nil)
	dip, err := sw.Forward(0, raw)
	fmt.Println(dip, err)
	// Output:
	// 10.0.0.9:8080 <nil>
}

// UpdatePool replaces a pool wholesale; the 3-step PCC update runs
// underneath and new connections only ever see complete pools.
func ExampleSwitch_UpdatePool() {
	sw, _ := silkroad.NewSwitch(silkroad.Defaults(1000))
	vip := silkroad.NewVIP("20.0.0.1", 80, silkroad.TCP)
	sw.AddVIP(0, vip, silkroad.Pool("10.0.0.1:20"))

	sw.UpdatePool(0, vip, silkroad.Pool("10.0.1.1:20", "10.0.1.2:20"))
	sw.Advance(silkroad.Time(50 * silkroad.Millisecond))

	pool, _ := sw.CurrentPool(vip)
	fmt.Println(len(pool), "backends")
	// Output:
	// 2 backends
}
