package silkroad

// End-to-end loopback tests of the wire path: a real UDP client sends raw
// TCP-in-UDP packets to a Tunnel, which balances them through the switch
// and forwards to real mock-DIP UDP listeners. Everything is unprivileged
// (plain sockets on 127.0.0.1), so these run in CI under -race.

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/netproto"
)

// mockDIP is one backend: a UDP listener recording, per client connection
// (source port), how many packets it received, plus per-packet header
// checks.
type mockDIP struct {
	addr netip.AddrPort
	conn *net.UDPConn

	mu      sync.Mutex
	byConn  map[uint16]int // client src port -> packets seen here
	badPkts int            // payloads that failed the per-mode header check
}

// startMockDIP binds a UDP listener on 127.0.0.1 and consumes datagrams
// until its socket closes. check validates each payload (per forwarding
// mode) and returns the client source port.
func startMockDIP(t *testing.T, wg *sync.WaitGroup, check func(d *mockDIP, pkt []byte) (uint16, bool)) *mockDIP {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("mock DIP listen: %v", err)
	}
	d := &mockDIP{
		addr:   conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		conn:   conn,
		byConn: make(map[uint16]int),
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 65536)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			src, ok := check(d, buf[:n])
			d.mu.Lock()
			if ok {
				d.byConn[src]++
			} else {
				d.badPkts++
			}
			d.mu.Unlock()
		}
	}()
	return d
}

// rewriteCheck validates a DNAT-forwarded packet: its destination must be
// this very DIP.
func rewriteCheck(d *mockDIP, pkt []byte) (uint16, bool) {
	var f netproto.Frame
	if err := netproto.ParseFrame(pkt, &f); err != nil {
		return 0, false
	}
	if f.Tuple.Dst != d.addr.Addr() || f.Tuple.DstPort != d.addr.Port() {
		return f.Tuple.SrcPort, false
	}
	return f.Tuple.SrcPort, true
}

// tunnelHarness bundles one running switch+tunnel with its client socket.
type tunnelHarness struct {
	sw     *Switch
	tun    *Tunnel
	client *net.UDPConn
	cancel context.CancelFunc
	done   chan struct{} // closed when Run returned
}

func startTunnel(t *testing.T, sw *Switch, mode string) *tunnelHarness {
	t.Helper()
	tcfg := TunnelConfig{
		Switch: sw,
		Listen: "127.0.0.1:0",
		Mode:   mode,
		Logf:   t.Logf,
	}
	if mode == TunnelIPIP {
		tcfg.Self = netip.MustParseAddr("192.0.2.1")
	}
	tun, err := NewTunnel(tcfg)
	if err != nil {
		t.Fatalf("NewTunnel: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := tun.Run(ctx); err != nil {
			t.Errorf("tunnel Run: %v", err)
		}
	}()
	go sw.Run(ctx)
	client, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(tun.LocalAddr()))
	if err != nil {
		t.Fatalf("client socket: %v", err)
	}
	h := &tunnelHarness{sw: sw, tun: tun, client: client, cancel: cancel, done: done}
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("tunnel Run did not return after cancellation")
		}
		client.Close()
		tun.Close()
		sw.Close()
	})
	return h
}

// send marshals one TCP packet for the VIP from client source port src and
// writes it to the tunnel.
func (h *tunnelHarness) send(t *testing.T, vip VIP, src uint16, flags uint8) {
	t.Helper()
	p := Packet{
		Tuple: FiveTuple{
			Src:     netip.MustParseAddr("10.1.0.1"),
			Dst:     vip.Addr,
			SrcPort: src,
			DstPort: vip.Port,
			Proto:   TCP,
		},
		TCPFlags: flags,
		Payload:  []byte("payload"),
	}
	raw, err := p.Marshal(nil)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := h.client.Write(raw); err != nil {
		t.Fatalf("client send: %v", err)
	}
}

// waitForwarded polls until the tunnel has forwarded at least want packets
// (UDP on loopback does not reorder or drop in practice, but the tunnel is
// asynchronous, so counts need a grace period).
func (h *tunnelHarness) waitForwarded(t *testing.T, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := h.tun.Stats()
		if st.Forwarded+st.Dropped >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout: forwarded+dropped = %+v, want >= %d", h.tun.Stats(), want)
}

// waitReceived polls until the mock DIPs have drained want packets off
// their sockets. The tunnel's Forwarded counter runs ahead of the backend
// goroutines (a send is counted when written, not when the listener reads
// it), so count assertions must wait for the consumers, especially when
// the whole test suite is loading the host.
func waitReceived(t *testing.T, dips []*mockDIP, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := 0
		for _, d := range dips {
			d.mu.Lock()
			for _, n := range d.byConn {
				got += n
			}
			got += d.badPkts
			d.mu.Unlock()
		}
		if got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: backends drained %d packets, want %d", got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTunnelLoopbackPCC is the end-to-end wire test: client -> tunnel ->
// mock DIPs over real UDP sockets, with a DIP pool update landing in the
// middle of traffic. Per-connection consistency must hold on the wire:
// every connection's packets arrive at exactly one backend, across the
// update, including connections pinned to the DIP being removed.
func TestTunnelLoopbackPCC(t *testing.T) {
	var wg sync.WaitGroup
	dips := make([]*mockDIP, 3)
	for i := range dips {
		dips[i] = startMockDIP(t, &wg, rewriteCheck)
	}
	defer func() {
		for _, d := range dips {
			d.conn.Close()
		}
		wg.Wait()
	}()

	cfg := Defaults(10_000)
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	pool := []DIP{dips[0].addr, dips[1].addr, dips[2].addr}
	if err := sw.AddVIP(sw.Now(), vip, pool); err != nil {
		t.Fatal(err)
	}
	h := startTunnel(t, sw, TunnelRewrite)

	const (
		preConns  = 30
		postConns = 30
		acks      = 3
		basePort  = uint16(20000)
	)
	var sent uint64

	// Phase 1: open connections and give each a few established packets.
	for c := 0; c < preConns; c++ {
		h.send(t, vip, basePort+uint16(c), FlagSYN)
		sent++
	}
	for a := 0; a < acks; a++ {
		for c := 0; c < preConns; c++ {
			h.send(t, vip, basePort+uint16(c), FlagACK)
			sent++
		}
	}
	h.waitForwarded(t, sent)

	// Mid-traffic pool update: remove a backend with PCC. Established
	// connections pinned to it must keep flowing to it.
	if err := sw.RemoveDIP(h.sw.Now(), vip, dips[2].addr); err != nil {
		t.Fatalf("RemoveDIP: %v", err)
	}

	// Phase 2: established connections keep talking, new ones arrive.
	for a := 0; a < acks; a++ {
		for c := 0; c < preConns; c++ {
			h.send(t, vip, basePort+uint16(c), FlagACK)
			sent++
		}
	}
	for c := 0; c < postConns; c++ {
		h.send(t, vip, basePort+uint16(preConns+c), FlagSYN)
		sent++
		for a := 0; a < acks; a++ {
			h.send(t, vip, basePort+uint16(preConns+c), FlagACK)
			sent++
		}
	}
	h.waitForwarded(t, sent)

	st := h.tun.Stats()
	if st.Undecodable != 0 {
		t.Errorf("tunnel reported %d undecodable payloads", st.Undecodable)
	}
	if st.Dropped != 0 {
		t.Errorf("tunnel dropped %d packets by verdict", st.Dropped)
	}
	waitReceived(t, dips, int(st.Forwarded))

	// PCC on the wire: no connection may appear at more than one backend.
	owner := make(map[uint16]int)
	violations := 0
	received := 0
	for i, d := range dips {
		d.mu.Lock()
		if d.badPkts != 0 {
			t.Errorf("dip %d saw %d packets failing the rewrite check", i, d.badPkts)
		}
		for src, n := range d.byConn {
			received += n
			if prev, seen := owner[src]; seen && prev != i {
				violations++
				t.Errorf("PCC violation: connection src=%d seen at dip %d and dip %d", src, prev, i)
			} else {
				owner[src] = i
			}
		}
		d.mu.Unlock()
	}
	if violations != 0 {
		t.Fatalf("%d PCC violations across pool update", violations)
	}
	if len(owner) != preConns+postConns {
		t.Errorf("backends saw %d distinct connections, want %d", len(owner), preConns+postConns)
	}
	if uint64(received) != st.Forwarded {
		t.Errorf("backends received %d packets, tunnel forwarded %d", received, st.Forwarded)
	}
	// New connections must avoid the removed backend.
	dips[2].mu.Lock()
	for src := range dips[2].byConn {
		if src >= basePort+preConns {
			t.Errorf("post-update connection src=%d landed on the removed dip", src)
		}
	}
	dips[2].mu.Unlock()
}

// TestTunnelLoopbackIPIP drives the encapsulating mode end to end: the
// backend receives IP-in-IP datagrams whose outer header names the LB and
// the DIP and whose inner packet still carries the VIP destination (DSR).
func TestTunnelLoopbackIPIP(t *testing.T) {
	self := netip.MustParseAddr("192.0.2.1")
	var wg sync.WaitGroup
	vipAddr := netip.MustParseAddr("20.0.0.1")
	d := startMockDIP(t, &wg, func(d *mockDIP, pkt []byte) (uint16, bool) {
		inner, outerSrc, outerDst, err := netproto.DecapIPIP(pkt)
		if err != nil || outerSrc != self || outerDst != d.addr.Addr() {
			return 0, false
		}
		var f netproto.Frame
		if err := netproto.ParseFrame(inner, &f); err != nil {
			return 0, false
		}
		if f.Tuple.Dst != vipAddr || f.Tuple.DstPort != 80 {
			return f.Tuple.SrcPort, false
		}
		return f.Tuple.SrcPort, true
	})
	defer func() {
		d.conn.Close()
		wg.Wait()
	}()

	sw, err := NewSwitch(Defaults(10_000))
	if err != nil {
		t.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	if err := sw.AddVIP(sw.Now(), vip, []DIP{d.addr}); err != nil {
		t.Fatal(err)
	}
	h := startTunnel(t, sw, TunnelIPIP)

	const conns = 10
	var sent uint64
	for c := 0; c < conns; c++ {
		h.send(t, vip, 30000+uint16(c), FlagSYN)
		h.send(t, vip, 30000+uint16(c), FlagACK)
		sent += 2
	}
	h.waitForwarded(t, sent)

	deadline := time.Now().Add(10 * time.Second)
	for {
		d.mu.Lock()
		got, bad := len(d.byConn), d.badPkts
		d.mu.Unlock()
		if bad != 0 {
			t.Fatalf("%d packets failed the IPIP check", bad)
		}
		if got == conns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend saw %d connections, want %d", got, conns)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTunnelGracefulShutdown cancels the tunnel in the middle of a traffic
// stream: Run must return promptly, nothing may panic or race, and the
// already-read batch still transmits (graceful, not abrupt).
func TestTunnelGracefulShutdown(t *testing.T) {
	var wg sync.WaitGroup
	d := startMockDIP(t, &wg, rewriteCheck)
	defer func() {
		d.conn.Close()
		wg.Wait()
	}()

	sw, err := NewSwitch(Defaults(10_000))
	if err != nil {
		t.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	if err := sw.AddVIP(sw.Now(), vip, []DIP{d.addr}); err != nil {
		t.Fatal(err)
	}
	h := startTunnel(t, sw, TunnelRewrite)

	// Traffic source: hammer the tunnel until told to stop.
	stop := make(chan struct{})
	var senderWG sync.WaitGroup
	senderWG.Add(1)
	go func() {
		defer senderWG.Done()
		src := uint16(40000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.send(t, vip, src, FlagSYN)
			src++
		}
	}()

	// Let traffic flow, then cancel mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for h.tun.Stats().Forwarded < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.tun.Stats().Forwarded == 0 {
		t.Fatal("no traffic flowed before shutdown")
	}
	h.cancel()
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after mid-traffic cancellation")
	}
	close(stop)
	senderWG.Wait()

	st := h.tun.Stats()
	if st.Forwarded == 0 {
		t.Fatal("nothing forwarded")
	}
	t.Logf("shutdown stats: %+v", st)
}
