package silkroad

import (
	"encoding/json"
	"net/http"

	"repro/internal/ctrlplane"
	"repro/internal/cuckoo"
	"repro/internal/dataplane"
	"repro/internal/learnfilter"
	"repro/internal/netproto"
)

// DebugHandler returns the live-introspection HTTP surface, intended to be
// mounted at /debug/silkroad/ on an operator-facing listener (cmd/silkroadd
// does this behind its -debug flag). Endpoints, all JSON:
//
//	trace?flow=F    one flow's recorded pipeline path (see Switch.Trace)
//	packets         the packet-trace ring, oldest first
//	journal         the control-plane event journal, oldest first
//	arm?flow=F      arm the flow filter for F
//	disarm?flow=F   disarm the flow filter for F
//	conntable       every ConnTable entry, per pipe
//	vips            every VIP with its versions and pools, per pipe
//	pending         the learning filter's pending set, per pipe
//	sram            per-stage ConnTable occupancy and SRAM breakdown, per pipe
//	intent          declarative desired state: generation, per-VIP status
//	                conditions, and the last applied spec
//
// Flow syntax is the FiveTuple rendering, "src:port->dst:port/proto"
// (e.g. "192.168.0.1:1234->10.0.0.1:80/tcp"); a "tcp:"/"udp:" prefix is
// also accepted. The trace/packets/journal/arm/disarm endpoints need a
// flight recorder attached (Config.FlightRecorder) and answer 503 without
// one; the table dumps always work.
func (s *Switch) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/silkroad/trace", s.handleTrace)
	mux.HandleFunc("/debug/silkroad/packets", s.handlePackets)
	mux.HandleFunc("/debug/silkroad/journal", s.handleJournal)
	mux.HandleFunc("/debug/silkroad/arm", s.handleArm)
	mux.HandleFunc("/debug/silkroad/disarm", s.handleDisarm)
	mux.HandleFunc("/debug/silkroad/conntable", s.handleConnTable)
	mux.HandleFunc("/debug/silkroad/vips", s.handleVIPs)
	mux.HandleFunc("/debug/silkroad/pending", s.handlePending)
	mux.HandleFunc("/debug/silkroad/sram", s.handleSRAM)
	mux.HandleFunc("/debug/silkroad/intent", s.handleIntent)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// flowParam parses the required ?flow= query parameter. On failure it has
// already written the error response and returns ok=false.
func flowParam(w http.ResponseWriter, req *http.Request) (netproto.FiveTuple, bool) {
	raw := req.URL.Query().Get("flow")
	if raw == "" {
		http.Error(w, "missing flow parameter (src:port->dst:port/proto)", http.StatusBadRequest)
		return netproto.FiveTuple{}, false
	}
	t, err := netproto.ParseFiveTuple(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return netproto.FiveTuple{}, false
	}
	return t, true
}

// recorder answers 503 and returns nil when no flight recorder is attached.
func (s *Switch) recorder(w http.ResponseWriter) *FlightRecorder {
	if s.rec == nil {
		http.Error(w, ErrNoRecorder.Error(), http.StatusServiceUnavailable)
		return nil
	}
	return s.rec
}

func (s *Switch) handleTrace(w http.ResponseWriter, req *http.Request) {
	rec := s.recorder(w)
	if rec == nil {
		return
	}
	t, ok := flowParam(w, req)
	if !ok {
		return
	}
	armed := false
	for _, a := range rec.Armed() {
		if a == t {
			armed = true
			break
		}
	}
	writeJSON(w, struct {
		Flow    string         `json:"flow"`
		Armed   bool           `json:"armed"`
		Records []PacketRecord `json:"records"`
	}{t.String(), armed, rec.FlowTrace(t)})
}

func (s *Switch) handlePackets(w http.ResponseWriter, req *http.Request) {
	rec := s.recorder(w)
	if rec == nil {
		return
	}
	writeJSON(w, struct {
		Total   uint64         `json:"total"` // records ever written
		Records []PacketRecord `json:"records"`
	}{rec.PacketSeq(), rec.Packets()})
}

func (s *Switch) handleJournal(w http.ResponseWriter, req *http.Request) {
	rec := s.recorder(w)
	if rec == nil {
		return
	}
	writeJSON(w, struct {
		Total   uint64          `json:"total"`
		Records []JournalRecord `json:"records"`
	}{rec.JournalSeq(), rec.Journal()})
}

func (s *Switch) handleArm(w http.ResponseWriter, req *http.Request) {
	rec := s.recorder(w)
	if rec == nil {
		return
	}
	t, ok := flowParam(w, req)
	if !ok {
		return
	}
	rec.Arm(t)
	writeJSON(w, struct {
		Flow  string `json:"flow"`
		Armed bool   `json:"armed"`
	}{t.String(), true})
}

func (s *Switch) handleDisarm(w http.ResponseWriter, req *http.Request) {
	rec := s.recorder(w)
	if rec == nil {
		return
	}
	t, ok := flowParam(w, req)
	if !ok {
		return
	}
	rec.Disarm(t)
	writeJSON(w, struct {
		Flow  string `json:"flow"`
		Armed bool   `json:"armed"`
	}{t.String(), false})
}

func (s *Switch) handleConnTable(w http.ResponseWriter, req *http.Request) {
	type pipeEntries struct {
		Pipe     int            `json:"pipe"`
		Len      int            `json:"len"`
		Capacity int            `json:"capacity"`
		Entries  []cuckoo.Entry `json:"entries"`
	}
	out := make([]pipeEntries, s.Pipes())
	for i := range out {
		s.inspect(i, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
			ct := dp.ConnTable()
			out[i] = pipeEntries{
				Pipe:     i,
				Len:      ct.Len(),
				Capacity: ct.Capacity(),
				Entries:  ct.Entries(),
			}
		})
	}
	writeJSON(w, out)
}

func (s *Switch) handleVIPs(w http.ResponseWriter, req *http.Request) {
	type vipVersion struct {
		Version uint32   `json:"version"`
		Pool    []string `json:"pool"`
	}
	type vipInfo struct {
		VIP            string       `json:"vip"`
		CurrentVersion uint32       `json:"current_version"`
		InUpdate       bool         `json:"in_update"`
		Versions       []vipVersion `json:"versions"`
	}
	type pipeVIPs struct {
		Pipe int       `json:"pipe"`
		VIPs []vipInfo `json:"vips"`
	}
	out := make([]pipeVIPs, s.Pipes())
	for i := range out {
		s.inspect(i, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
			pv := pipeVIPs{Pipe: i, VIPs: []vipInfo{}}
			for _, vip := range dp.VIPs() {
				cur, _ := dp.CurrentVersion(vip)
				info := vipInfo{
					VIP:            vip.String(),
					CurrentVersion: cur,
					InUpdate:       dp.InUpdate(vip),
				}
				vers, _ := dp.PoolVersions(vip)
				for _, v := range vers {
					pool, _ := dp.Pool(vip, v)
					dips := make([]string, len(pool))
					for j, d := range pool {
						dips[j] = d.String()
					}
					info.Versions = append(info.Versions, vipVersion{Version: v, Pool: dips})
				}
				pv.VIPs = append(pv.VIPs, info)
			}
			out[i] = pv
		})
	}
	writeJSON(w, out)
}

func (s *Switch) handlePending(w http.ResponseWriter, req *http.Request) {
	type pendingEntry struct {
		Flow    string `json:"flow"`
		KeyHash uint64 `json:"key_hash"`
		Digest  uint32 `json:"digest"`
		Version uint32 `json:"version"`
		At      Time   `json:"at_ns"`
	}
	type pipePending struct {
		Pipe    int            `json:"pipe"`
		Pending []pendingEntry `json:"pending"`
	}
	out := make([]pipePending, s.Pipes())
	for i := range out {
		s.inspect(i, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
			var evs []learnfilter.Event
			if lf := dp.LearnFilter(); lf != nil {
				evs = lf.Pending()
			}
			pp := pipePending{Pipe: i, Pending: make([]pendingEntry, len(evs))}
			for j, ev := range evs {
				pp.Pending[j] = pendingEntry{
					Flow:    ev.Tuple.String(),
					KeyHash: ev.KeyHash,
					Digest:  ev.Digest,
					Version: ev.Version,
					At:      ev.At,
				}
			}
			out[i] = pp
		})
	}
	writeJSON(w, out)
}

func (s *Switch) handleIntent(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, struct {
		Generation uint64       `json:"generation"`
		Converged  bool         `json:"converged"`
		Statuses   []VIPStatus  `json:"statuses"`
		Spec       *ClusterSpec `json:"spec,omitempty"`
	}{s.SpecGeneration(), s.Converged(), s.VIPStatuses(), s.AppliedSpec()})
}

func (s *Switch) handleSRAM(w http.ResponseWriter, req *http.Request) {
	type pipeSRAM struct {
		Pipe         int                       `json:"pipe"`
		Stages       []cuckoo.StageStats       `json:"stages"`
		Memory       dataplane.MemoryBreakdown `json:"memory"`
		TotalBytes   int                       `json:"total_bytes"`
		OccupancyPct float64                   `json:"occupancy_pct"`
	}
	out := make([]pipeSRAM, s.Pipes())
	for i := range out {
		s.inspect(i, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
			ct := dp.ConnTable()
			mem := dp.Memory()
			occ := 0.0
			if ct.Capacity() > 0 {
				occ = 100 * float64(ct.Len()) / float64(ct.Capacity())
			}
			out[i] = pipeSRAM{
				Pipe:         i,
				Stages:       ct.StageOccupancy(),
				Memory:       mem,
				TotalBytes:   mem.Total(),
				OccupancyPct: occ,
			}
		})
	}
	writeJSON(w, out)
}
