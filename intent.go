package silkroad

import (
	"fmt"
	"sync"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/intent"
	"repro/internal/netwide"
	"repro/internal/slo"
)

// Declarative control-plane surface, re-exported from internal/intent.
// A ClusterSpec names every VIP with its pool, meter and generation;
// Switch.Apply / Cluster.Apply converge the switch (or fleet) onto it and
// report per-VIP status conditions. The imperative methods (AddVIP,
// AddDIP, UpdatePool, ...) are thin single-key edits of the same desired
// state, applied through the same reconcile engine.
type (
	// ClusterSpec is the versioned desired state of a switch or fleet.
	ClusterSpec = intent.ClusterSpec
	// VIPSpec declares one VIP's desired pool, meter and demands.
	VIPSpec = intent.VIPSpec
	// VIPStatus is one VIP's reconcile status condition.
	VIPStatus = intent.VIPStatus
	// SpecCondition is a VIPStatus condition value.
	SpecCondition = intent.Condition
	// FieldError locates one spec validation failure.
	FieldError = intent.FieldError
	// SpecValidationError lists every validation failure in a spec.
	SpecValidationError = intent.ValidationError
	// ReconcilerConfig tunes the reconcile engine (workqueue bound,
	// retry/backoff budget).
	ReconcilerConfig = intent.Config
)

// Status conditions.
const (
	CondApplied  = intent.CondApplied
	CondDegraded = intent.CondDegraded
	CondError    = intent.CondError
)

// SpecVersion is the schema version accepted in ClusterSpec.Version.
const SpecVersion = intent.SpecVersion

// ParseSpec decodes a JSON ClusterSpec strictly (unknown fields are
// errors). Validation happens at Apply.
func ParseSpec(data []byte) (*ClusterSpec, error) { return intent.ParseSpec(data) }

// intentState is the facade's desired-state store: the reconciler plus
// the last spec applied wholesale (for /configz-style surfaces). Guarded
// by its own mutex — the reconciler calls back into the pipe-locked
// facade, so this lock is always taken first and never while a pipe lock
// is held.
type intentState struct {
	mu       sync.Mutex
	rec      *intent.Reconciler
	lastSpec *ClusterSpec
}

// intentTarget adapts the switch's raw routing layer (engine fanout or
// single-pipe control plane) as the reconciler's Target. Reads come from
// pipe 0 (pipes are kept identical by fanout); ObservedPool reports the
// newest requested pool (TargetPool), so diffs account for in-flight
// updates.
type intentTarget struct{ s *Switch }

func (t intentTarget) ObservedVIPs() []VIP {
	var vips []VIP
	t.s.inspect(0, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
		vips = dp.VIPs()
	})
	return vips
}

func (t intentTarget) ObservedPool(vip VIP) ([]DIP, bool) {
	var pool []DIP
	var err error
	t.s.inspect(0, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
		pool, err = cp.TargetPool(vip)
	})
	return pool, err == nil
}

func (t intentTarget) AddVIP(now Time, vip VIP, pool []DIP, meterBytesPerSec float64) error {
	return t.s.applyAddVIP(now, vip, pool, meterBytesPerSec)
}

func (t intentTarget) RemoveVIP(now Time, vip VIP) error {
	return t.s.applyRemoveVIP(now, vip)
}

func (t intentTarget) UpdatePool(now Time, vip VIP, pool []DIP) error {
	return t.s.applyUpdatePool(now, vip, pool)
}

func (t intentTarget) PendingWork() int { return t.s.PendingWork() }

// applyAddVIP routes a VIP announcement to the hardware: every pipe on a
// multi-pipe switch (with rollback on partial failure), or the single
// control plane.
func (s *Switch) applyAddVIP(now Time, vip VIP, pool []DIP, meterBytesPerSec float64) error {
	if s.multi != nil {
		return s.multi.AddVIP(now, vip, pool, meterBytesPerSec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.AddVIP(now, vip, pool, meterBytesPerSec)
}

func (s *Switch) applyRemoveVIP(now Time, vip VIP) error {
	if s.multi != nil {
		return s.multi.RemoveVIP(now, vip)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.RemoveVIP(now, vip)
}

func (s *Switch) applyUpdatePool(now Time, vip VIP, pool []DIP) error {
	defer s.poke()
	if s.multi != nil {
		return s.multi.RequestUpdate(now, vip, pool)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.RequestUpdate(now, vip, pool)
}

// PendingWork sums the switch's undrained control-plane load across every
// pipe: learn events awaiting flush, queued CPU insertions, in-flight and
// queued pool updates. Zero means drained — the §4.2 condition rolling
// fleet updates gate on before moving to the next switch.
func (s *Switch) PendingWork() int {
	if s.multi != nil {
		return s.multi.PendingWork()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.PendingWork()
}

// intentSource runs the reconciler's retry/backoff work on the switch
// runtime, so failed applies re-fire in time order with all other
// scheduled work under both Run and AdvanceTo.
type intentSource struct{ s *Switch }

func (is intentSource) NextEventTime() (Time, bool) {
	st := is.s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.NextDue()
}

func (is intentSource) Advance(now Time) {
	st := is.s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	if due, ok := st.rec.NextDue(); ok && !now.Before(due) {
		st.rec.Reconcile(now)
	}
}

// Apply converges the switch onto spec and returns the per-VIP statuses.
// Validation failures return a *SpecValidationError (with every field
// error) and touch nothing. Keys whose apply fails transiently are left
// Degraded and retried with backoff on the switch runtime; Statuses/
// Converged report progress.
//
// Generation semantics: a spec with Generation 0 is auto-assigned
// last+1; an explicit generation below the last applied one is rejected
// as stale, and re-applying the last generation is accepted only when
// the content is unchanged (an idempotent no-op).
func (s *Switch) Apply(now Time, spec *ClusterSpec) ([]VIPStatus, error) {
	defer s.poke()
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	lastGen := st.rec.Generation()
	d, err := spec.Normalize(lastGen)
	if err != nil {
		return st.rec.Statuses(), err
	}
	if d.Generation == lastGen && !intent.SameDesired(d, st.rec.Desired()) {
		return st.rec.Statuses(), &SpecValidationError{Errors: []FieldError{{
			Field: "generation",
			Msg:   fmt.Sprintf("generation %d already applied with different content", d.Generation),
		}}}
	}
	st.rec.SetDesired(now, d)
	st.rec.Reconcile(now)
	applied := spec.Clone()
	applied.Generation = d.Generation
	st.lastSpec = applied
	return st.rec.Statuses(), nil
}

// VIPStatuses returns the reconcile status of every VIP the switch's
// desired state tracks.
func (s *Switch) VIPStatuses() []VIPStatus {
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.Statuses()
}

// SpecGeneration returns the desired-state generation currently staged.
func (s *Switch) SpecGeneration() uint64 {
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.Generation()
}

// AppliedSpec returns a copy of the last spec handed to Apply (nil when
// the switch has only seen imperative edits), with its effective
// generation filled in.
func (s *Switch) AppliedSpec() *ClusterSpec {
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastSpec.Clone()
}

// Converged reports whether every desired VIP is Applied at the staged
// generation with no queued reconcile work.
func (s *Switch) Converged() bool {
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.Converged()
}

// DetectDrift scans observed against desired state and queues every
// divergence for re-convergence (picked up by the runtime, or the next
// Reconcile). Returns the number of drifted VIPs.
func (s *Switch) DetectDrift(now Time) int {
	defer s.poke()
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.DetectDrift(now)
}

// Reconcile runs one reconcile round immediately (due retries and drift
// repairs); under Run this also happens autonomously. Returns the number
// of keys still queued.
func (s *Switch) Reconcile(now Time) int {
	defer s.poke()
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.Reconcile(now)
}

// --- fleet facade -------------------------------------------------------

// ClusterConfig parameterizes NewCluster.
type ClusterConfig struct {
	// Switches is the fleet size (default 1).
	Switches int
	// Switch is the per-member switch configuration. Telemetry and
	// FlightRecorder pointers are shared: the whole fleet reports into
	// one registry, with reconcile events labelled by member.
	//
	// Exception: when Switch.SLO is set, per-member SLIs need per-member
	// registries, so members beyond the first get a fresh Telemetry (and
	// no FlightRecorder — its journal stays with member 0); member 0 keeps
	// the configured pointers, with a registry auto-created if nil.
	Switch Config
	// Topology, when non-nil, gates Apply on netwide placement admission
	// for specs that declare VIP demands.
	Topology *netwide.Topology
	// Reconcile tunes the per-member reconcile engines.
	Reconcile ReconcilerConfig
}

// Cluster is a reconciled fleet of switches: Apply stages a spec and
// rolls it out one switch at a time, gated on each switch's
// pending-insert drain, rolling back on mid-rollout failure. Drive
// convergence with Reconcile (or AdvanceTo on the members plus periodic
// Reconcile calls under virtual time).
type Cluster struct {
	mu       sync.Mutex
	sws      []*Switch
	rec      *intent.ClusterReconciler
	lastSpec *ClusterSpec
}

// switchFleet adapts the member switches as an intent.Fleet.
type switchFleet struct{ sws []*Switch }

func (f switchFleet) Members() int               { return len(f.sws) }
func (f switchFleet) Target(i int) intent.Target { return intentTarget{f.sws[i]} }

// NewCluster builds a fleet of identically configured switches behind one
// rolling reconciler.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	n := cfg.Switches
	if n <= 0 {
		n = 1
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		mcfg := cfg.Switch
		if mcfg.SLO != nil {
			if i == 0 {
				if mcfg.Telemetry == nil {
					mcfg.Telemetry = NewTelemetry()
				}
			} else {
				mcfg.Telemetry = NewTelemetry()
				mcfg.FlightRecorder = nil
			}
		}
		sw, err := NewSwitch(mcfg)
		if err != nil {
			return nil, err
		}
		c.sws = append(c.sws, sw)
	}
	fcfg := intent.FleetConfig{Config: cfg.Reconcile, Topology: cfg.Topology}
	if fcfg.Tracer == nil {
		if cfg.Switch.SLO != nil {
			fcfg.Tracer = c.sws[0].Telemetry()
		} else {
			fcfg.Tracer = tracerFor(cfg.Switch)
		}
	}
	c.rec = intent.NewCluster(switchFleet{c.sws}, fcfg)
	if cfg.Switch.SLO != nil {
		// A page-severity alert firing anywhere in the fleet holds the
		// rolling frontier: don't push a new generation onto a burning
		// fleet. The gate reads only evaluator state (its report mutex),
		// never a pipe lock.
		sws := c.sws
		c.rec.SetRolloutGate(func() (bool, string) {
			for i, sw := range sws {
				if ev := sw.SLO(); ev != nil && ev.PageFiring() {
					return true, fmt.Sprintf("member %d page firing", i)
				}
			}
			return false, ""
		})
	}
	return c, nil
}

// SLO aggregates every member's current SLO report into a fleet view:
// summed throughput SLIs, worst-switch attribution, and the union of
// active alerts with member labels. Members without an evaluator
// contribute empty reports.
func (c *Cluster) SLO() FleetSLOReport {
	reports := make([]SLOReport, len(c.sws))
	for i, sw := range c.sws {
		if ev := sw.SLO(); ev != nil {
			reports[i] = ev.Report()
		}
	}
	return slo.Aggregate(reports)
}

// RolloutPaused reports whether an in-flight rolling update is currently
// held by a firing fleet alert.
func (c *Cluster) RolloutPaused() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec.RolloutPaused()
}

// Size returns the fleet size.
func (c *Cluster) Size() int { return len(c.sws) }

// Switch returns member i (packet injection, per-member inspection).
func (c *Cluster) Switch(i int) *Switch { return c.sws[i] }

// Apply validates and stages spec for a rolling fleet update, running the
// first reconcile round immediately. The rollout continues via Reconcile.
func (c *Cluster) Apply(now Time, spec *ClusterSpec) ([]VIPStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.rec.SetSpec(now, spec); err != nil {
		return c.rec.Statuses(), err
	}
	c.rec.Step(now)
	applied := spec.Clone()
	applied.Generation = c.rec.Generation()
	c.lastSpec = applied
	return c.rec.Statuses(), nil
}

// Reconcile runs one fleet reconcile round; returns true once the fleet
// is converged at the staged generation.
func (c *Cluster) Reconcile(now Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec.Step(now)
}

// Converged reports fleet-wide convergence at the staged generation.
func (c *Cluster) Converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec.Converged()
}

// Generation returns the staged spec generation.
func (c *Cluster) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec.Generation()
}

// Statuses aggregates per-VIP conditions across the fleet: worst
// condition wins, observed generation is the fleet minimum.
func (c *Cluster) Statuses() []VIPStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec.Statuses()
}

// AppliedSpec returns a copy of the last accepted spec.
func (c *Cluster) AppliedSpec() *ClusterSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSpec.Clone()
}

// DetectDrift scans every member when the fleet is idle and re-enters the
// rolling phase on any divergence. Returns drifted key count.
func (c *Cluster) DetectDrift(now Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec.DetectDrift(now)
}

// NextDue returns the earliest time queued fleet work becomes ready.
func (c *Cluster) NextDue() (Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec.NextDue()
}

// AdvanceTo advances every member's event runtime to now (virtual-time
// drivers). Fleet reconcile rounds are separate: call Reconcile.
func (c *Cluster) AdvanceTo(now Time) {
	for _, sw := range c.sws {
		sw.AdvanceTo(now)
	}
}

// Close releases every member's background machinery.
func (c *Cluster) Close() error {
	for _, sw := range c.sws {
		_ = sw.Close()
	}
	return nil
}
