package silkroad

import (
	"testing"

	"repro/internal/netproto"
)

func TestExportImportRoundtrip(t *testing.T) {
	donor := newSwitch(t)
	recv := newSwitch(t)
	first := map[int]DIP{}
	for i := 0; i < 200; i++ {
		first[i] = donor.Process(Time(i)*1000, clientPkt(i, netproto.FlagSYN)).DIP
	}
	donor.AdvanceTo(Time(50 * Millisecond))

	snap := donor.Export(Time(50 * Millisecond))
	if len(snap.Entries) != 200 {
		t.Fatalf("snapshot has %d entries, want 200", len(snap.Entries))
	}
	if snap.Pipes != donor.Pipes() {
		t.Fatalf("snapshot pipes = %d", snap.Pipes)
	}
	// Entries carry the resolved DIP for offline audit.
	for _, e := range snap.Entries {
		if !e.DIP.IsValid() || len(e.Pool) == 0 {
			t.Fatalf("entry not self-contained: %+v", e)
		}
	}

	imported, skipped, err := recv.Import(Time(60*Millisecond), snap)
	if err != nil {
		t.Fatal(err)
	}
	if imported != 200 || skipped != 0 {
		t.Fatalf("imported=%d skipped=%d", imported, skipped)
	}
	now := Time(200 * Millisecond)
	for i := 0; i < 200; i++ {
		res := recv.Process(now, clientPkt(i, netproto.FlagACK))
		if !res.ConnHit {
			t.Fatalf("conn %d not installed on receiver", i)
		}
		if res.DIP != first[i] {
			t.Fatalf("conn %d: donor DIP %v, receiver DIP %v", i, first[i], res.DIP)
		}
	}
	// Export again from the receiver: tables agree entry-for-entry.
	snap2 := recv.Export(now)
	if len(snap2.Entries) != len(snap.Entries) {
		t.Fatalf("receiver exports %d entries, donor %d", len(snap2.Entries), len(snap.Entries))
	}
}

func TestClusterMigrateConvergesWithLiveDonor(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Switches: 2, Switch: Defaults(100000)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	spec := &ClusterSpec{Version: SpecVersion, VIPs: []VIPSpec{{
		VIP: "20.0.0.1:80/tcp", Pool: []string{"10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20"},
	}}}
	if _, err := c.Apply(0, spec); err != nil {
		t.Fatal(err)
	}
	for i := 0; !c.Converged(); i++ {
		if i > 100 {
			t.Fatal("fleet never converged")
		}
		c.Reconcile(Time(i) * Time(Millisecond))
		c.AdvanceTo(Time(i) * Time(Millisecond))
	}

	donor := c.Switch(0)
	first := map[int]DIP{}
	for i := 0; i < 300; i++ {
		first[i] = donor.Process(Time(200*Millisecond)+Time(i)*1000, clientPkt(i, netproto.FlagSYN)).DIP
	}
	donor.AdvanceTo(Time(250 * Millisecond))

	st, err := c.Migrate(Time(250*Millisecond), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported < 300 {
		t.Fatalf("migrated %d entries, want >= 300 (%+v)", st.Imported, st)
	}
	// The standby serves every connection with the donor's mapping.
	now := Time(400 * Millisecond)
	for i := 0; i < 300; i++ {
		res := c.Switch(1).Process(now, clientPkt(i, netproto.FlagACK))
		if !res.ConnHit || res.DIP != first[i] {
			t.Fatalf("conn %d on standby: hit=%v dip=%v want %v", i, res.ConnHit, res.DIP, first[i])
		}
	}
	// The donor kept its table (Migrate pre-warms, it does not drain).
	if got := len(donor.Export(now).Entries); got != 300 {
		t.Fatalf("donor exports %d entries after migrate, want 300", got)
	}
}

func TestMigrateBadIndexes(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Switches: 2, Switch: Defaults(10000)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Migrate(0, 0, 0); err == nil {
		t.Fatal("self-migration accepted")
	}
	if _, err := c.Migrate(0, 0, 5); err == nil {
		t.Fatal("bad receiver accepted")
	}
}
