package silkroad

// Facade-level coverage for the telemetry subsystem and the API cleanup
// that shipped with it: sentinel errors under errors.Is, AddVIP options,
// symmetric per-pipe stats, and the registry scraped concurrently with
// multi-pipe traffic and pool updates (the -race target).

import (
	"errors"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/netproto"
	"repro/internal/telemetry"
)

func TestForwardSentinelErrors(t *testing.T) {
	sw := newSwitch(t)
	metered := NewVIP("20.0.0.9", 80, TCP)
	if err := sw.AddVIP(0, metered, Pool("10.0.0.1:20"), WithMeter(1000)); err != nil {
		t.Fatal(err)
	}

	if _, err := sw.Forward(0, []byte{0x45, 0x00, 0x01}); !errors.Is(err, ErrUndecodable) {
		t.Fatalf("truncated packet: err = %v, want ErrUndecodable", err)
	}

	stranger := clientPkt(1, netproto.FlagSYN)
	stranger.Tuple.Dst = netip.MustParseAddr("30.0.0.1")
	raw, err := stranger.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Forward(0, raw); !errors.Is(err, ErrNotVIP) {
		t.Fatalf("non-VIP destination: err = %v, want ErrNotVIP", err)
	}

	burst := clientPkt(2, 0)
	burst.Tuple.Dst = metered.Addr
	burst.Payload = make([]byte, 900)
	var meterErr error
	for i := 0; i < 50; i++ {
		raw, _ := burst.Marshal(nil)
		if _, err := sw.Forward(0, raw); err != nil {
			meterErr = err
		}
	}
	if !errors.Is(meterErr, ErrMeterDrop) {
		t.Fatalf("metered burst: err = %v, want ErrMeterDrop", meterErr)
	}

	// Empty the hardware pool row directly — the state Forward must report
	// as ErrNoBackend. Done last: it breaks the test VIP.
	if err := sw.Dataplane().WritePool(testVIP(), 0, nil); err != nil {
		t.Fatal(err)
	}
	raw, err = clientPkt(3, netproto.FlagSYN).Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Forward(0, raw); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("empty pool: err = %v, want ErrNoBackend", err)
	}
}

// TestAddVIPWithMeter checks the options form of AddVIP configures the
// meter the way the deprecated AddVIPMetered did.
func TestAddVIPWithMeter(t *testing.T) {
	for _, useOption := range []bool{true, false} {
		sw, err := NewSwitch(Defaults(1000))
		if err != nil {
			t.Fatal(err)
		}
		vip := NewVIP("20.0.0.9", 80, TCP)
		if useOption {
			err = sw.AddVIP(0, vip, Pool("10.0.0.1:20"), WithMeter(1000))
		} else {
			err = sw.AddVIPMetered(0, vip, Pool("10.0.0.1:20"), 1000)
		}
		if err != nil {
			t.Fatal(err)
		}
		pkt := clientPkt(1, 0)
		pkt.Tuple.Dst = vip.Addr
		pkt.Payload = make([]byte, 900)
		drops := 0
		for i := 0; i < 50; i++ {
			raw, _ := pkt.Marshal(nil)
			if _, err := sw.Forward(0, raw); err != nil {
				drops++
			}
		}
		if drops < 40 {
			t.Fatalf("option=%v: meter dropped %d of 50 burst packets", useOption, drops)
		}
	}
}

// TestPerPipeSymmetric checks the per-pipe breakdown has the same shape on
// single- and multi-pipe switches, so callers need not branch on Engine().
func TestPerPipeSymmetric(t *testing.T) {
	for _, pipes := range []int{1, 4} {
		sw := newMultiSwitch(t, pipes)
		var pkts []*Packet
		for i := 0; i < 300; i++ {
			pkts = append(pkts, clientPkt(i, netproto.FlagSYN))
		}
		sw.ProcessBatch(0, pkts)
		sw.Advance(Time(Second))

		pp := sw.PerPipe()
		if len(pp) != pipes {
			t.Fatalf("pipes=%d: PerPipe() has %d entries", pipes, len(pp))
		}
		st := sw.Stats()
		var pktSum uint64
		var connSum int
		for i, p := range pp {
			if p.Pipe != i {
				t.Fatalf("pipes=%d: entry %d has Pipe=%d", pipes, i, p.Pipe)
			}
			pktSum += p.Packets
			connSum += p.Connections
		}
		if pktSum != st.Dataplane.Packets {
			t.Fatalf("pipes=%d: per-pipe packets sum %d != aggregate %d", pipes, pktSum, st.Dataplane.Packets)
		}
		if connSum != st.Connections {
			t.Fatalf("pipes=%d: per-pipe conns sum %d != aggregate %d", pipes, connSum, st.Connections)
		}
	}
}

// TestTelemetryConcurrentMultiPipe is the -race target: 4 pipes processing
// batches while another goroutine churns the DIP pool and a third scrapes
// Snapshot(), asserting counters never move backwards. At the end the
// registry must agree with the switch's own books: the pending-window
// histogram holds exactly one sample per learned insert, and learned +
// digest-FP + bloom-FP inserts equal the control plane's install count.
func TestTelemetryConcurrentMultiPipe(t *testing.T) {
	cfg := Defaults(200_000)
	cfg.Pipes = 4
	tel := NewTelemetry()
	cfg.Telemetry = tel
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Telemetry() != tel {
		t.Fatal("Telemetry() accessor lost the registry")
	}
	poolA := Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")
	poolB := Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.4:20")
	if err := sw.AddVIP(0, testVIP(), poolA); err != nil {
		t.Fatal(err)
	}

	const conns = 4000
	const batchSize = 256
	const passes = 3 // pass 0 is SYNs, the rest established traffic
	var nowNS atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		batch := make([]*Packet, 0, batchSize)
		total := conns * passes
		for p := 0; p < total; p += batchSize {
			batch = batch[:0]
			for i := p; i < p+batchSize && i < total; i++ {
				flags := netproto.FlagACK
				if i < conns {
					flags = netproto.FlagSYN
				}
				batch = append(batch, clientPkt(i%conns, flags))
			}
			now := Time(nowNS.Add(int64(10 * Microsecond)))
			sw.ProcessBatch(now, batch)
			sw.Advance(now)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		// Churn the pool while traffic runs, yielding between updates so
		// the queue tracks the traffic instead of drowning it.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pool := poolA
			if i%2 == 1 {
				pool = poolB
			}
			if err := sw.UpdatePool(Time(nowNS.Load()), testVIP(), pool); err != nil {
				t.Errorf("UpdatePool: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev TelemetrySnapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := tel.Snapshot(Time(nowNS.Load()))
			for name, v := range prev.Counters {
				if s.Counters[name] < v {
					t.Errorf("counter %s moved backwards: %d -> %d", name, v, s.Counters[name])
					return
				}
			}
			if ph, ok := prev.Histograms[telemetry.MetricPendingWindow]; ok {
				if s.Histograms[telemetry.MetricPendingWindow].Count < ph.Count {
					t.Error("pending-window histogram count moved backwards")
					return
				}
			}
			for i, p := range prev.Pipes {
				if i < len(s.Pipes) && s.Pipes[i].Packets < p.Packets {
					t.Errorf("pipe %d packets moved backwards", i)
					return
				}
			}
			prev = s
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	end := Time(nowNS.Load()).Add(Duration(Second))
	sw.Advance(end)
	snap := tel.Snapshot(end)
	st := sw.Stats()

	learned := snap.Counters[telemetry.MetricInsertsLearned]
	digestFP := snap.Counters[telemetry.MetricDigestCollisions]
	bloomFP := snap.Counters[telemetry.MetricBloomFPs]
	if pw := snap.Histograms[telemetry.MetricPendingWindow]; uint64(pw.Count) != learned {
		t.Fatalf("pending-window count %d != learned inserts %d", pw.Count, learned)
	}
	if got := learned + digestFP + bloomFP; got != st.Controlplane.Inserted {
		t.Fatalf("telemetry inserts %d (learned %d + digest %d + bloom %d) != control plane Inserted %d",
			got, learned, digestFP, bloomFP, st.Controlplane.Inserted)
	}
	if st.Connections != conns {
		t.Fatalf("Connections = %d, want %d", st.Connections, conns)
	}
	var pipePkts uint64
	for _, p := range snap.Pipes {
		pipePkts += p.Packets
	}
	if pipePkts != st.Dataplane.Packets {
		t.Fatalf("per-pipe telemetry packets %d != dataplane packets %d", pipePkts, st.Dataplane.Packets)
	}
	vip := snap.VIPs[testVIP().TelemetryKey().String()]
	if vip.Conns != st.Controlplane.Inserted {
		t.Fatalf("VIP conns %d != inserted %d", vip.Conns, st.Controlplane.Inserted)
	}
	if got := snap.Counters[telemetry.MetricUpdatesRequested]; got != st.Controlplane.UpdatesRequested {
		t.Fatalf("updates requested: telemetry %d != control plane %d", got, st.Controlplane.UpdatesRequested)
	}
}

// --- hot-path overhead benchmarks ---------------------------------------
//
// BenchmarkProcessBatch{NilTracer,Telemetry,Recorder} measure the same
// 4-pipe batch workload with no tracer, with the default registry, and
// with a flight recorder (one armed flow not in the batch) wrapping the
// registry; CI runs all three as a smoke against hot-path regressions
// (both attached variants must stay within a few percent of the nil
// tracer — the recorder's untraced fast path is one atomic load).

func benchProcessBatch(b *testing.B, mode string) {
	cfg := Defaults(1_000_000)
	cfg.Pipes = 4
	switch mode {
	case "nil":
	case "telemetry":
		cfg.Telemetry = NewTelemetry()
	case "recorder":
		cfg.Telemetry = NewTelemetry()
		cfg.FlightRecorder = NewFlightRecorder(FlightRecorderConfig{})
	default:
		b.Fatalf("unknown bench mode %q", mode)
	}
	sw, err := NewSwitch(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")); err != nil {
		b.Fatal(err)
	}
	if mode == "recorder" {
		// Arm a flow that never appears in the batch: the per-packet cost
		// under measurement is the armed!=0 filter lookup, not recording.
		if _, err := sw.Trace(clientPkt(1_000_000, 0).Tuple); err != nil {
			b.Fatal(err)
		}
	}
	const conns = 8192
	const batchSize = 256
	batch := make([]*Packet, batchSize)
	for i := range batch {
		batch[i] = clientPkt(i, netproto.FlagSYN)
	}
	sw.ProcessBatch(0, batch)
	sw.Advance(Time(5 * Millisecond))
	now := Time(10 * Millisecond)
	b.ReportAllocs()
	b.SetBytes(batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * batchSize) % conns
		for j := range batch {
			batch[j] = clientPkt((base+j)%conns, netproto.FlagACK)
		}
		sw.ProcessBatch(now, batch)
		now = now.Add(Microsecond)
	}
}

func BenchmarkProcessBatchNilTracer(b *testing.B) { benchProcessBatch(b, "nil") }
func BenchmarkProcessBatchTelemetry(b *testing.B) { benchProcessBatch(b, "telemetry") }
func BenchmarkProcessBatchRecorder(b *testing.B)  { benchProcessBatch(b, "recorder") }
