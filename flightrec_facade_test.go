package silkroad

// Facade-level coverage for the flight recorder: Switch.Trace capturing a
// flow's full verdict path, the /debug/silkroad/ introspection surface,
// and the -race churn target that hammers pool updates and 4-pipe batches
// while draining the rings.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/netproto"
)

func newRecordedSwitch(t *testing.T, pipes int, cfgRec FlightRecorderConfig) (*Switch, *FlightRecorder) {
	t.Helper()
	cfg := Defaults(100000)
	cfg.Pipes = pipes
	cfg.Telemetry = NewTelemetry()
	cfg.FlightRecorder = NewFlightRecorder(cfgRec)
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")); err != nil {
		t.Fatal(err)
	}
	return sw, cfg.FlightRecorder
}

// TestTraceFacade checks the headline debugging story: arm a flow with
// Switch.Trace, run its connection, and read back the full pipeline path —
// the SYN's learn, the CPU insertion that installed the ConnTable entry,
// and the established packets hitting it.
func TestTraceFacade(t *testing.T) {
	sw, _ := newRecordedSwitch(t, 1, FlightRecorderConfig{})
	target := clientPkt(1, netproto.FlagSYN)

	flow, err := sw.Trace(target.Tuple)
	if err != nil {
		t.Fatal(err)
	}
	sw.Process(0, target)
	sw.Process(0, clientPkt(2, netproto.FlagSYN)) // unarmed flow: must not appear
	sw.Advance(Time(5 * Millisecond))             // learning filter drains, CPU installs
	res := sw.Process(Time(10*Millisecond), clientPkt(1, netproto.FlagACK))
	if !res.ConnHit {
		t.Fatalf("established packet missed ConnTable: %+v", res)
	}

	recs := flow.Records()
	if len(recs) != 3 {
		t.Fatalf("want SYN verdict + insert + ACK verdict, got %d records: %+v", len(recs), recs)
	}
	syn, ins, ack := recs[0], recs[1], recs[2]
	if syn.Kind != "verdict" || !syn.Learned || syn.ConnHit {
		t.Fatalf("SYN record mismatch: %+v", syn)
	}
	if ins.Kind != "insert" || ins.Verdict != "learned/ok" {
		t.Fatalf("insert record mismatch: %+v", ins)
	}
	if ack.Kind != "verdict" || !ack.ConnHit || ack.Stage < 0 || ack.DIP == "" {
		t.Fatalf("ACK record mismatch: %+v", ack)
	}
	for _, r := range recs {
		if r.Flow != target.Tuple.String() {
			t.Fatalf("record for wrong flow: %+v", r)
		}
	}

	// The other flow stayed untraced.
	if got := sw.FlightRecorder().FlowTrace(clientPkt(2, 0).Tuple); len(got) != 0 {
		t.Fatalf("unarmed flow recorded %d records", len(got))
	}

	// The journal saw the insertion.
	var inserts int
	for _, j := range sw.FlightRecorder().Journal() {
		if j.Kind == "cuckoo" && j.Op == "insert" {
			inserts++
		}
	}
	if inserts != 2 {
		t.Fatalf("journal: want 2 cuckoo inserts, got %d", inserts)
	}

	flow.Stop()
	sw.Process(Time(11*Millisecond), clientPkt(1, netproto.FlagACK))
	if got := flow.Records(); len(got) != 3 {
		t.Fatalf("stopped flow kept recording: %d records", len(got))
	}

	// Without a recorder, Trace fails with the sentinel.
	plain := newSwitch(t)
	if _, err := plain.Trace(target.Tuple); !errors.Is(err, ErrNoRecorder) {
		t.Fatalf("Trace without recorder: err = %v, want ErrNoRecorder", err)
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return resp
}

// TestDebugEndpoints drives the /debug/silkroad/ surface end to end on a
// 2-pipe switch: arm over HTTP, run traffic, read the trace, and dump
// every table.
func TestDebugEndpoints(t *testing.T) {
	sw, _ := newRecordedSwitch(t, 2, FlightRecorderConfig{})
	srv := httptest.NewServer(sw.DebugHandler())
	defer srv.Close()

	target := clientPkt(3, netproto.FlagSYN)
	flowQ := "?flow=" + target.Tuple.String()

	if resp := getJSON(t, srv, "/debug/silkroad/arm"+flowQ, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("arm: status %d", resp.StatusCode)
	}
	sw.Process(0, target)
	sw.Advance(Time(5 * Millisecond))
	sw.Process(Time(10*Millisecond), clientPkt(3, netproto.FlagACK))

	var trace struct {
		Flow    string         `json:"flow"`
		Armed   bool           `json:"armed"`
		Records []PacketRecord `json:"records"`
	}
	getJSON(t, srv, "/debug/silkroad/trace"+flowQ, &trace)
	if !trace.Armed || len(trace.Records) != 3 {
		t.Fatalf("trace: armed=%v records=%d", trace.Armed, len(trace.Records))
	}

	var conntable []struct {
		Pipe    int `json:"pipe"`
		Len     int `json:"len"`
		Entries []struct {
			Stage int `json:"stage"`
		} `json:"entries"`
	}
	getJSON(t, srv, "/debug/silkroad/conntable", &conntable)
	if len(conntable) != 2 {
		t.Fatalf("conntable: %d pipes", len(conntable))
	}
	totalConns := 0
	for _, p := range conntable {
		totalConns += p.Len
		if p.Len != len(p.Entries) {
			t.Fatalf("pipe %d: len %d != %d entries", p.Pipe, p.Len, len(p.Entries))
		}
	}
	if totalConns != 1 {
		t.Fatalf("conntable: want 1 installed connection, got %d", totalConns)
	}

	var vips []struct {
		Pipe int `json:"pipe"`
		VIPs []struct {
			VIP      string `json:"vip"`
			Versions []struct {
				Version uint32   `json:"version"`
				Pool    []string `json:"pool"`
			} `json:"versions"`
		} `json:"vips"`
	}
	getJSON(t, srv, "/debug/silkroad/vips", &vips)
	for _, p := range vips {
		if len(p.VIPs) != 1 || p.VIPs[0].VIP != testVIP().String() {
			t.Fatalf("vips pipe %d: %+v", p.Pipe, p.VIPs)
		}
		if len(p.VIPs[0].Versions) == 0 || len(p.VIPs[0].Versions[0].Pool) != 3 {
			t.Fatalf("vips pipe %d: missing pool dump: %+v", p.Pipe, p.VIPs[0])
		}
	}

	var sram []struct {
		Pipe       int `json:"pipe"`
		Stages     []struct{ Slots int }
		TotalBytes int `json:"total_bytes"`
	}
	getJSON(t, srv, "/debug/silkroad/sram", &sram)
	for _, p := range sram {
		if len(p.Stages) == 0 || p.TotalBytes <= 0 {
			t.Fatalf("sram pipe %d: %+v", p.Pipe, p)
		}
	}

	getJSON(t, srv, "/debug/silkroad/pending", &[]struct{}{})
	var journal struct {
		Total   uint64          `json:"total"`
		Records []JournalRecord `json:"records"`
	}
	getJSON(t, srv, "/debug/silkroad/journal", &journal)
	if journal.Total == 0 || len(journal.Records) == 0 {
		t.Fatal("journal: no records after an insertion")
	}

	if resp := getJSON(t, srv, "/debug/silkroad/disarm"+flowQ, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("disarm: status %d", resp.StatusCode)
	}
	getJSON(t, srv, "/debug/silkroad/trace"+flowQ, &trace)
	if trace.Armed {
		t.Fatal("trace still armed after disarm")
	}

	// Parameter and recorder-absence errors.
	if resp := getJSON(t, srv, "/debug/silkroad/trace", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace without flow: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/debug/silkroad/trace?flow=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace with bad flow: status %d", resp.StatusCode)
	}
	plain := newSwitch(t)
	plainSrv := httptest.NewServer(plain.DebugHandler())
	defer plainSrv.Close()
	if resp := getJSON(t, plainSrv, "/debug/silkroad/packets", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("packets without recorder: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, plainSrv, "/debug/silkroad/conntable", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("conntable must work without a recorder: status %d", resp.StatusCode)
	}
}

// checkJournalShape asserts one snapshot is well-formed: sequence numbers
// strictly increase and every record's fields are consistent with its kind
// (a torn write would interleave fields of two different records).
func checkJournalShape(t *testing.T, j []JournalRecord) {
	t.Helper()
	for i, r := range j {
		if i > 0 && r.Seq <= j[i-1].Seq {
			t.Fatalf("journal seqs not increasing at %d: %d after %d", i, r.Seq, j[i-1].Seq)
		}
		switch r.Kind {
		case "pool_update":
			if r.Step == "" || r.VIP != testVIP().String() || r.Op != "" {
				t.Fatalf("torn pool_update record: %+v", r)
			}
		case "cuckoo":
			if r.Op == "" || r.Step != "" || r.VIP != "" {
				t.Fatalf("torn cuckoo record: %+v", r)
			}
		case "learn_flush":
			if r.Step != "" || r.Op != "" || r.Batch <= 0 {
				t.Fatalf("torn learn_flush record: %+v", r)
			}
		case "reconcile":
			if r.Step == "" || r.KeyHash != 0 || r.Batch != 0 {
				t.Fatalf("torn reconcile record: %+v", r)
			}
		default:
			t.Fatalf("unknown journal kind: %+v", r)
		}
	}
}

// TestFlightRecorderChurnRace is the -race target: 4 pipes processing
// batches and a goroutine churning the DIP pool while a third drains the
// packet ring and the journal. The journal ring is sized to hold every
// event, so at the end its sequence numbers must be exactly 0..n-1 —
// gap-free — and every snapshot along the way must be free of torn
// records.
func TestFlightRecorderChurnRace(t *testing.T) {
	cfg := Defaults(200_000)
	cfg.Pipes = 4
	cfg.Telemetry = NewTelemetry()
	cfg.FlightRecorder = NewFlightRecorder(FlightRecorderConfig{
		PacketRing:  1 << 12,
		JournalRing: 1 << 16,
		SampleEvery: 7,
	})
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := sw.FlightRecorder()
	poolA := Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")
	poolB := Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.4:20")
	if err := sw.AddVIP(0, testVIP(), poolA); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Trace(clientPkt(17, 0).Tuple); err != nil {
		t.Fatal(err)
	}

	const conns = 4000
	const batchSize = 256
	const passes = 3
	const updates = 200
	var nowNS atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		batch := make([]*Packet, 0, batchSize)
		total := conns * passes
		for p := 0; p < total; p += batchSize {
			batch = batch[:0]
			for i := p; i < p+batchSize && i < total; i++ {
				flags := netproto.FlagACK
				if i < conns {
					flags = netproto.FlagSYN
				}
				batch = append(batch, clientPkt(i%conns, flags))
			}
			now := Time(nowNS.Add(int64(10 * Microsecond)))
			sw.ProcessBatch(now, batch)
			sw.Advance(now)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pool := poolA
			if i%2 == 1 {
				pool = poolB
			}
			if err := sw.UpdatePool(Time(nowNS.Load()), testVIP(), pool); err != nil {
				t.Errorf("UpdatePool: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			checkJournalShape(t, rec.Journal())
			pkts := rec.Packets()
			for i, r := range pkts {
				if i > 0 && r.Seq <= pkts[i-1].Seq {
					t.Errorf("packet seqs not increasing at %d", i)
					return
				}
				if r.Kind != "verdict" && r.Kind != "insert" {
					t.Errorf("torn packet record: %+v", r)
					return
				}
				if r.Flow == "" {
					t.Errorf("packet record missing flow: %+v", r)
					return
				}
			}
			runtime.Gosched()
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	sw.Advance(Time(nowNS.Load()).Add(Duration(Second)))

	j := rec.Journal()
	total := rec.JournalSeq()
	if uint64(len(j)) != total {
		t.Fatalf("journal ring overflowed: %d records for %d seqs (size the ring up)", len(j), total)
	}
	for i, r := range j {
		if r.Seq != uint64(i) {
			t.Fatalf("journal seq gap at index %d: seq %d", i, r.Seq)
		}
	}
	checkJournalShape(t, j)

	// The armed flow's trace survived the churn: its SYN, insert, and
	// established packets are all present and ordered.
	trace := rec.FlowTrace(clientPkt(17, 0).Tuple)
	var verdicts, inserts int
	for _, r := range trace {
		switch r.Kind {
		case "verdict":
			verdicts++
		case "insert":
			inserts++
		}
	}
	if verdicts != passes || inserts != 1 {
		t.Fatalf("armed flow trace: %d verdicts, %d inserts (want %d, 1): %+v",
			verdicts, inserts, passes, trace)
	}
}
