package silkroad

// Connection-state handoff facade: point-in-time conn-table snapshots
// (Export/Import on a Switch) and live warm migration between fleet
// members (Cluster.Migrate). The heavy lifting lives in internal/handoff
// (wire types, transfer pump) and internal/ctrlplane (export sessions,
// rate-bounded imports); this file routes them across pipes and members
// under the facade's locking discipline.

import (
	"errors"
	"fmt"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/handoff"
	"repro/internal/simtime"
)

// Re-exported handoff types.
type (
	// ConnSnapshot is a point-in-time export of a switch's connection
	// table in portable form — what Export returns, Import consumes, and
	// silkroad-inspect's snapshot subcommand pretty-prints and diffs.
	ConnSnapshot = handoff.Snapshot
	// ConnEntry is one connection's transferable state.
	ConnEntry = handoff.Entry
	// HandoffStats counts a migration's work.
	HandoffStats = handoff.Stats
)

// ErrMigrateStalled aborts a Migrate whose transfer stops making
// progress (receiver wedged, donor mutating faster than the pump).
var ErrMigrateStalled = errors.New("silkroad: migration stalled")

// Export freezes a snapshot of every connection the switch has installed,
// across all pipes, without pausing the packet path. The snapshot is
// self-contained: each entry carries its pinned pool content and resolved
// DIP, so it can be imported on any switch sharing the fleet's hash seeds,
// diffed against another snapshot, or audited offline.
func (s *Switch) Export(now Time) *ConnSnapshot {
	snap := &ConnSnapshot{TakenAt: now, Pipes: s.Pipes()}
	for i := 0; i < s.Pipes(); i++ {
		s.inspect(i, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
			ses := cp.BeginExport(now)
			for ses.Pending() > 0 {
				snap.Entries = append(snap.Entries, ses.NextChunk(4096)...)
			}
			if c := ses.Cursor(); c > snap.Cursor {
				snap.Cursor = c
			}
			ses.Close()
		})
	}
	return snap
}

// Import replays a snapshot into the switch: each entry is routed to its
// owning pipe, remapped onto a local pool version by content, and pinned
// through the bounded CPU insertion queue — the same rate limit learned
// connections pay, so an import cannot starve live learning. Backpressure
// is absorbed by advancing the switch's runtime until the queue drains.
// Entries the switch cannot host (unknown VIP) are skipped and counted in
// the second return.
func (s *Switch) Import(now Time, snap *ConnSnapshot) (imported, skipped int, err error) {
	ims := make([]*ctrlplane.Importer, s.Pipes())
	for i := range ims {
		s.inspect(i, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
			ims[i] = ctrlplane.NewImporter(cp)
		})
	}
	t := now
	for _, e := range snap.Entries {
		if e.Op == handoff.OpDelete {
			continue // point-in-time snapshots carry no deletes
		}
		p := s.pipeOf(e.Tuple)
		for attempt := 0; ; attempt++ {
			var ierr error
			s.inspect(p, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
				ierr = ims[p].Import(t, e)
			})
			if ierr == nil {
				imported++
				break
			}
			if !errors.Is(ierr, handoff.ErrBackpressure) {
				skipped++
				break
			}
			if attempt > 10000 {
				return imported, skipped, fmt.Errorf("%w: import queue never drained", ErrMigrateStalled)
			}
			t = t.Add(simtime.Millisecond)
			s.AdvanceTo(t)
		}
	}
	s.AdvanceTo(t.Add(simtime.Millisecond))
	return imported, skipped, nil
}

// pipeOf returns the pipe owning a tuple's shard.
func (s *Switch) pipeOf(t FiveTuple) int {
	if s.multi != nil {
		return s.multi.PipeOf(t)
	}
	return 0
}

// migrateImporter routes entries into the receiving switch's pipes under
// their locks.
type migrateImporter struct {
	s   *Switch
	ims []*ctrlplane.Importer
}

func (m *migrateImporter) Import(now Time, e handoff.Entry) error {
	p := m.s.pipeOf(e.Tuple)
	var err error
	m.s.inspect(p, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
		err = m.ims[p].Import(now, e)
	})
	return err
}

func (m *migrateImporter) Delete(now Time, e handoff.Entry) {
	p := m.s.pipeOf(e.Tuple)
	m.s.inspect(p, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
		m.ims[p].Delete(now, e)
	})
}

// Migrate warm-copies member from's entire connection table into member
// to while from keeps forwarding: per-pipe export sessions stream the
// snapshot, then the delta feed replays whatever landed mid-flight, until
// the receiver has converged to the donor's exact table. Returns the
// aggregate transfer stats. The donor's state is left intact — Migrate
// pre-warms a standby; traffic steering is the caller's business (or
// internal/cluster's drain, which also flips the spray).
func (c *Cluster) Migrate(now Time, from, to int) (HandoffStats, error) {
	var agg HandoffStats
	if from < 0 || from >= len(c.sws) || to < 0 || to >= len(c.sws) || from == to {
		return agg, fmt.Errorf("silkroad: bad migration %d -> %d", from, to)
	}
	donor, recv := c.sws[from], c.sws[to]
	ri := &migrateImporter{s: recv, ims: make([]*ctrlplane.Importer, recv.Pipes())}
	for i := range ri.ims {
		recv.inspect(i, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
			ri.ims[i] = ctrlplane.NewImporter(cp)
		})
	}
	trs := make([]*handoff.Transfer, donor.Pipes())
	for i := range trs {
		donor.inspect(i, func(dp *dataplane.Switch, cp *ctrlplane.ControlPlane) {
			trs[i] = handoff.NewTransfer(cp.BeginExport(now), ri, handoff.Config{
				Tracer: dp.Tracer(), Donor: from, Receiver: to,
			})
		})
	}
	t := now
	for attempt := 0; ; attempt++ {
		allDone := true
		for i, tr := range trs {
			var done bool
			donor.inspect(i, func(*dataplane.Switch, *ctrlplane.ControlPlane) {
				_, done = tr.Step(t, 1024)
			})
			if !done {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if attempt > 10000 {
			for _, tr := range trs {
				tr.Cancel(t)
			}
			return agg, ErrMigrateStalled
		}
		t = t.Add(simtime.Millisecond)
		donor.AdvanceTo(t)
		recv.AdvanceTo(t)
	}
	end := t.Add(simtime.Millisecond)
	for _, tr := range trs {
		tr.Finish(end)
		st := tr.Stats()
		agg.Exported += st.Exported
		agg.Imported += st.Imported
		agg.Deltas += st.Deltas
		agg.Chunks += st.Chunks
		agg.Backoffs += st.Backoffs
	}
	donor.AdvanceTo(end)
	recv.AdvanceTo(end)
	return agg, nil
}
