package silkroad

// Integration tests across the dataplane/ctrlplane boundary and the
// paper's system-level claims that no single package can assert alone.

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"repro/internal/health"
	"repro/internal/netproto"
)

// TestChurnInvariants runs minutes of virtual time with arrivals, pool
// updates and terminations interleaved, then checks the bookkeeping
// invariants that PCC rests on: software shadows match hardware entries,
// version refcounts drain to zero, and no update is left dangling.
func TestChurnInvariants(t *testing.T) {
	cfg := Defaults(50000)
	// Aging reclaims zombie entries: connections that terminate while
	// still pending install afterwards (the CPU cannot know) and must be
	// swept out by idle timeout, as on the real switch.
	cfg.Controlplane.AgingTimeout = Duration(30 * Second)
	cfg.Controlplane.AgingSweepEvery = Duration(10 * Second)
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	basePool := Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20", "10.0.0.4:20",
		"10.0.0.5:20", "10.0.0.6:20", "10.0.0.7:20", "10.0.0.8:20")
	if err := sw.AddVIP(0, vip, basePool); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	now := Time(0)
	live := map[int]bool{}
	next := 0
	tuple := func(i int) FiveTuple {
		return FiveTuple{
			Src:     netip.AddrFrom4([4]byte{9, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst:     vip.Addr,
			SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: TCP,
		}
	}
	firstDIP := map[int]DIP{}
	// DIPs that have been taken out of service at some point: connections
	// pinned to them are dead by server action, and §4.2's version reuse
	// may legitimately rebind their slot — the oracle exempts them.
	removedEver := map[DIP]bool{}
	for step := 0; step < 6000; step++ {
		now = now.Add(Duration(rng.Intn(2000)+1) * Microsecond)
		switch r := rng.Float64(); {
		case r < 0.45: // new connection
			res := sw.Process(now, &Packet{Tuple: tuple(next), TCPFlags: netproto.FlagSYN})
			if res.Verdict.String() == "forward" {
				firstDIP[next] = res.DIP
				live[next] = true
			}
			next++
		case r < 0.80: // packet on an existing connection: PCC check
			if len(live) == 0 {
				continue
			}
			for i := range live {
				res := sw.Process(now, &Packet{Tuple: tuple(i), TCPFlags: netproto.FlagACK})
				if res.Verdict.String() == "forward" && res.DIP != firstDIP[i] {
					if removedEver[firstDIP[i]] {
						// Server went down; the connection re-binds.
						firstDIP[i] = res.DIP
					} else {
						t.Fatalf("step %d: conn %d moved %v -> %v", step, i, firstDIP[i], res.DIP)
					}
				}
				break
			}
		case r < 0.92: // end a connection
			for i := range live {
				sw.EndConnection(now, tuple(i))
				delete(live, i)
				break
			}
		default: // pool update: remove or re-add a random DIP
			cur, _ := sw.CurrentPool(vip)
			if len(cur) > 4 && rng.Intn(2) == 0 {
				victim := cur[rng.Intn(len(cur))]
				sw.RemoveDIP(now, vip, victim)
				removedEver[victim] = true
			} else if len(cur) < len(basePool) {
				for _, d := range basePool {
					found := false
					for _, c := range cur {
						if c == d {
							found = true
							break
						}
					}
					if !found {
						sw.AddDIP(now, vip, d)
						break
					}
				}
			}
		}
	}
	// Drain everything; the aging sweeps reclaim zombies.
	now = now.Add(Duration(Second))
	sw.Advance(now)
	for i := range live {
		sw.EndConnection(now, tuple(i))
	}
	for k := 0; k < 8; k++ {
		now = now.Add(Duration(15 * Second))
		sw.Advance(now)
	}

	st := sw.Stats()
	if st.Controlplane.UpdatesRequested == 0 {
		t.Fatal("no updates exercised")
	}
	if st.Connections != 0 {
		t.Fatalf("%d shadows leaked after all conns ended", st.Connections)
	}
	if got := sw.Dataplane().ConnTable().Len(); got != 0 {
		t.Fatalf("%d hardware entries leaked", got)
	}
	// All versions but the current one must have retired.
	vers, _ := sw.Dataplane().PoolVersions(vip)
	if len(vers) != 1 {
		t.Fatalf("versions not retired: %v", vers)
	}
}

// TestTwoSwitchesConsistentMapping verifies the §5.3/§7 property that lets
// ECMP spray one VIP's traffic over many SilkRoad switches and survive a
// switch failure for new connections: switches with the same configuration
// and the same pool history map any given new connection identically.
func TestTwoSwitchesConsistentMapping(t *testing.T) {
	mk := func() *Switch {
		sw, err := NewSwitch(Defaults(10000))
		if err != nil {
			t.Fatal(err)
		}
		vip := NewVIP("20.0.0.1", 80, TCP)
		if err := sw.AddVIP(0, vip, Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")); err != nil {
			t.Fatal(err)
		}
		return sw
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		tup := FiveTuple{
			Src:     netip.AddrFrom4([4]byte{8, 8, byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("20.0.0.1"),
			SrcPort: uint16(2000 + i), DstPort: 80, Proto: TCP,
		}
		ra := a.Process(Time(i), &Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
		rb := b.Process(Time(i), &Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
		if ra.DIP != rb.DIP {
			t.Fatalf("conn %d maps to %v on switch A but %v on switch B", i, ra.DIP, rb.DIP)
		}
	}
}

// TestSwitchFailureRecovery models §7's switch-failure discussion: after a
// failover, connections that used the latest pool version keep their DIP
// on the replacement switch (same VIPTable); connections pinned to an
// older version may break — exactly the SLB-failure equivalence the paper
// concedes.
func TestSwitchFailureRecovery(t *testing.T) {
	vip := NewVIP("20.0.0.1", 80, TCP)
	pool := Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20", "10.0.0.4:20")
	primary, _ := NewSwitch(Defaults(10000))
	primary.AddVIP(0, vip, pool)

	// Establish connections on the latest version.
	tuples := make([]FiveTuple, 100)
	dips := make([]DIP, 100)
	for i := range tuples {
		tuples[i] = FiveTuple{
			Src:     netip.AddrFrom4([4]byte{7, 7, 0, byte(i)}),
			Dst:     vip.Addr,
			SrcPort: uint16(3000 + i), DstPort: 80, Proto: TCP,
		}
		dips[i] = primary.Process(Time(i), &Packet{Tuple: tuples[i], TCPFlags: netproto.FlagSYN}).DIP
	}
	// Failover: a standby switch with the same (latest) VIPTable state.
	standby, _ := NewSwitch(Defaults(10000))
	standby.AddVIP(0, vip, pool)
	broken := 0
	for i := range tuples {
		res := standby.Process(Time(1000+i), &Packet{Tuple: tuples[i], TCPFlags: netproto.FlagACK})
		if res.DIP != dips[i] {
			broken++
		}
	}
	if broken != 0 {
		t.Fatalf("%d latest-version connections broke across failover, want 0", broken)
	}
}

// TestDecodeNeverPanics fuzzes the packet decoder with random bytes.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var p netproto.Packet
	for i := 0; i < 20000; i++ {
		n := rng.Intn(128)
		buf := make([]byte, n)
		rng.Read(buf)
		if n > 0 && rng.Intn(2) == 0 {
			buf[0] = byte(4 << 4) // bias towards plausible IPv4/IPv6 starts
			if rng.Intn(2) == 0 {
				buf[0] = byte(6 << 4)
			}
		}
		_ = netproto.Decode(buf, &p) // must not panic
	}
}

// TestOverflowDegradesGracefully fills ConnTable past capacity: the switch
// must keep forwarding (unpinned connections resolve through VIPTable) and
// count overflows instead of failing.
func TestOverflowDegradesGracefully(t *testing.T) {
	cfg := Defaults(256) // tiny ConnTable
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vip := NewVIP("20.0.0.1", 80, TCP)
	sw.AddVIP(0, vip, Pool("10.0.0.1:20", "10.0.0.2:20"))
	now := Time(0)
	for i := 0; i < 3000; i++ {
		tup := FiveTuple{
			Src:     netip.AddrFrom4([4]byte{6, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst:     vip.Addr,
			SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: TCP,
		}
		res := sw.Process(now, &Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
		if res.Verdict.String() != "forward" && res.Verdict.String() != "redirect-syn-conntable" {
			t.Fatalf("packet %d verdict %v", i, res.Verdict)
		}
		now = now.Add(20 * Microsecond)
	}
	sw.Advance(now.Add(Duration(Second)))
	st := sw.Stats()
	if st.Controlplane.Overflows == 0 {
		t.Fatal("3000 conns into a 256-entry table produced no overflows")
	}
	if st.Controlplane.Inserted == 0 {
		t.Fatal("nothing inserted at all")
	}
}

// TestFacadeHealthChecker drives the §7 failure-handling loop through the
// public API: a dead backend is detected, removed with PCC, and re-added
// on recovery.
func TestFacadeHealthChecker(t *testing.T) {
	sw, _ := NewSwitch(Defaults(10000))
	vip := NewVIP("20.0.0.1", 80, TCP)
	pool := Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")
	sw.AddVIP(0, vip, pool)
	alive := map[DIP]bool{pool[0]: true, pool[1]: true, pool[2]: true}
	hc := sw.NewHealthChecker(health.DefaultConfig(), func(now Time, d DIP) bool { return alive[d] })
	for _, d := range pool {
		hc.Watch(vip, d)
	}
	alive[pool[1]] = false
	for s := 0; s <= 60; s += 10 {
		now := Time(s) * Time(Second)
		hc.Advance(now)
		sw.Advance(now)
	}
	cur, _ := sw.CurrentPool(vip)
	if len(cur) != 2 {
		t.Fatalf("pool after health failover = %v", cur)
	}
	if hc.Metrics().Failovers != 1 {
		t.Fatalf("Failovers = %d", hc.Metrics().Failovers)
	}
	alive[pool[1]] = true
	for s := 70; s <= 120; s += 10 {
		now := Time(s) * Time(Second)
		hc.Advance(now)
		sw.Advance(now)
	}
	cur, _ = sw.CurrentPool(vip)
	if len(cur) != 3 {
		t.Fatalf("pool after recovery = %v", cur)
	}
}

// TestConcurrentFacade hammers the switch from several goroutines; run
// with -race this validates the facade's serialization claim.
func TestConcurrentFacade(t *testing.T) {
	sw, _ := NewSwitch(Defaults(50000))
	vip := NewVIP("20.0.0.1", 80, TCP)
	sw.AddVIP(0, vip, Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20"))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tup := FiveTuple{
					Src:     netip.AddrFrom4([4]byte{byte(g + 1), 0, byte(i >> 8), byte(i)}),
					Dst:     vip.Addr,
					SrcPort: uint16(1000*g + i), DstPort: 80, Proto: TCP,
				}
				sw.Process(Time(i)*1000, &Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
				if i%50 == 0 {
					sw.Stats()
					sw.CurrentPool(vip)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			sw.RemoveDIP(Time(i)*100_000, vip, AddrPort("10.0.0.3:20"))
			sw.Advance(Time(i)*100_000 + 50_000)
			sw.AddDIP(Time(i)*100_000+60_000, vip, AddrPort("10.0.0.3:20"))
		}
	}()
	wg.Wait()
	if sw.Stats().Dataplane.Packets != 2000 {
		t.Fatalf("packets = %d", sw.Stats().Dataplane.Packets)
	}
}

// TestStatsAccounting cross-checks dataplane and ctrlplane counters.
func TestStatsAccounting(t *testing.T) {
	sw, _ := NewSwitch(Defaults(10000))
	vip := NewVIP("20.0.0.1", 80, TCP)
	sw.AddVIP(0, vip, Pool("10.0.0.1:20"))
	for i := 0; i < 100; i++ {
		tup := FiveTuple{
			Src:     netip.AddrFrom4([4]byte{5, 5, 0, byte(i)}),
			Dst:     vip.Addr,
			SrcPort: uint16(5000 + i), DstPort: 80, Proto: TCP,
		}
		sw.Process(Time(i)*1000, &Packet{Tuple: tup, TCPFlags: netproto.FlagSYN})
	}
	sw.Advance(Time(Second))
	st := sw.Stats()
	if st.Dataplane.LearnOffers != 100 {
		t.Fatalf("LearnOffers = %d", st.Dataplane.LearnOffers)
	}
	if st.Controlplane.Inserted != 100 {
		t.Fatalf("Inserted = %d", st.Controlplane.Inserted)
	}
	if st.Connections != 100 {
		t.Fatalf("Connections = %d", st.Connections)
	}
	if got := sw.Dataplane().ConnTable().Len(); got != 100 {
		t.Fatalf("hardware entries = %d", got)
	}
}
