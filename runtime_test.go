package silkroad

import (
	"context"
	"testing"
	"time"

	"repro/internal/netproto"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRunDrivesControlPlane verifies the wall-clock runtime end to end with
// a hand-stepped clock: a SYN's learn event is drained and its ConnTable
// insertion executed by Switch.Run alone — the test never calls Advance.
func TestRunDrivesControlPlane(t *testing.T) {
	clock := NewManualClock(0)
	cfg := Defaults(100000)
	cfg.Clock = clock
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sw.Run(ctx) }()

	waitFor(t, "runtime driver to start", func() bool {
		return sw.rt.driver.Load() != nil
	})
	if err := sw.Run(context.Background()); err != ErrRunning {
		t.Fatalf("second Run returned %v, want ErrRunning", err)
	}

	res := sw.Process(sw.Now(), clientPkt(1, netproto.FlagSYN))
	if !res.DIP.IsValid() {
		t.Fatal("no DIP chosen")
	}
	// Push the clock past the learning-filter flush (1 ms) plus the CPU
	// insertion time; a packet-path poke is not needed — the driver's own
	// sleep schedule picks the deadline up.
	clock.Set(Time(10 * Millisecond))
	waitFor(t, "autonomous ConnTable insertion", func() bool {
		return sw.Stats().Controlplane.Inserted == 1
	})

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
}

// TestEveryTask verifies periodic runtime tasks fire as the clock passes
// their deadlines and stop firing once cancelled.
func TestEveryTask(t *testing.T) {
	clock := NewManualClock(0)
	cfg := Defaults(1000)
	cfg.Clock = clock
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}

	fired := make(chan Time, 16)
	stop := sw.Every(Duration(5*Millisecond), func(now Time) {
		select {
		case fired <- now:
		default:
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sw.Run(ctx) }()

	clock.Set(Time(12 * Millisecond))
	var got []Time
	waitFor(t, "two periodic firings", func() bool {
		for {
			select {
			case at := <-fired:
				got = append(got, at)
			default:
				return len(got) >= 2
			}
		}
	})
	if got[0] != Time(5*Millisecond) || got[1] != Time(10*Millisecond) {
		t.Fatalf("firings at %v, want [5ms 10ms]", got)
	}

	stop()
	clock.Set(Time(50 * Millisecond))
	time.Sleep(20 * time.Millisecond)
	select {
	case at := <-fired:
		t.Fatalf("stopped task fired at %v", at)
	default:
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
}

// TestMultiPipeNextEventTime is the regression test for the multi-pipe
// deadline merge: Switch.NextEventTime must return the earliest due time
// across pipes, and advancing past one pipe's deadline must not starve
// work queued on another pipe.
func TestMultiPipeNextEventTime(t *testing.T) {
	cfg := Defaults(100000)
	cfg.Pipes = 4
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20")); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.NextEventTime(); ok {
		t.Fatal("idle multi-pipe switch reported due work")
	}

	// Find two connections that shard to different pipes.
	eng := sw.Engine()
	first := clientPkt(1, netproto.FlagSYN)
	second := (*Packet)(nil)
	for i := 2; i < 200; i++ {
		p := clientPkt(i, netproto.FlagSYN)
		if eng.PipeOf(p.Tuple) != eng.PipeOf(first.Tuple) {
			second = p
			break
		}
	}
	if second == nil {
		t.Fatal("could not find tuples on two distinct pipes")
	}

	// SYN on pipe A at t=0 and on pipe B half a flush later: the pipes now
	// hold learn events with distinct flush deadlines.
	sw.Process(0, first)
	sw.Process(Time(Millisecond)/2, second)

	at, ok := sw.NextEventTime()
	if !ok || at != Time(Millisecond) {
		t.Fatalf("NextEventTime = %v,%v, want pipe A's flush at 1ms", at, ok)
	}

	// Advance through pipe A's deadline only: pipe B's work must survive
	// and still be reported, not be silently dropped or executed early.
	sw.Advance(Time(Millisecond) + Time(Millisecond)/4)
	at, ok = sw.NextEventTime()
	if !ok {
		t.Fatal("pipe B's pending work vanished after advancing pipe A")
	}
	if want := Time(Millisecond) + Time(Millisecond)/2; at != want {
		t.Fatalf("NextEventTime after pipe A drain = %v, want pipe B's flush at %v", at, want)
	}

	// Advancing past every deadline installs both connections.
	sw.Advance(Time(5 * Millisecond))
	if got := sw.Stats().Controlplane.Inserted; got != 2 {
		t.Fatalf("Inserted = %d after draining both pipes, want 2", got)
	}
	if _, ok := sw.NextEventTime(); ok {
		t.Fatal("drained switch still reports due work")
	}
}
