// Package silkroad is a faithful reimplementation of SilkRoad (Miao et al.,
// SIGCOMM 2017): a stateful layer-4 load balancer that runs entirely in a
// switching ASIC, keeping per-connection state in on-chip SRAM and
// guaranteeing per-connection consistency (PCC) across DIP pool updates.
//
// The package wraps the two halves of the system — the hardware data plane
// (internal/dataplane: ConnTable, VIPTable, DIPPoolTable, TransitTable,
// learning filter on a modeled ASIC) and the switch software
// (internal/ctrlplane: cuckoo insertions, the 3-step PCC update, version
// management) — behind one Switch type driven by explicit virtual time:
//
//	sw, _ := silkroad.NewSwitch(silkroad.Defaults(1_000_000))
//	vip := silkroad.NewVIP("20.0.0.1", 80, silkroad.TCP)
//	sw.AddVIP(0, vip, silkroad.Pool("10.0.0.1:20", "10.0.0.2:20"))
//	dip, _ := sw.Forward(now, rawPacket)           // full packet path
//	sw.RemoveDIP(now, vip, silkroad.AddrPort("10.0.0.2:20")) // PCC update
//
// Nothing here reads the wall clock; callers pass simtime-style timestamps
// (nanoseconds), which makes behaviour reproducible and lets the same code
// run under the flow-level simulator, the benchmark harness, and the
// real-socket demo in cmd/silkroadd.
package silkroad

import (
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/health"
	"repro/internal/netproto"
	"repro/internal/pipes"
	"repro/internal/simtime"
)

// Re-exported core types. VIP identifies a service; DIP is a backend
// address; FiveTuple identifies a connection.
type (
	// VIP is a virtual IP service endpoint (address, port, protocol).
	VIP = dataplane.VIP
	// DIP is a direct (backend) address.
	DIP = dataplane.DIP
	// FiveTuple identifies a transport connection.
	FiveTuple = netproto.FiveTuple
	// Packet is a decoded L3/L4 packet.
	Packet = netproto.Packet
	// Time is virtual time in nanoseconds.
	Time = simtime.Time
	// Duration is a span of virtual time in nanoseconds.
	Duration = simtime.Duration
	// Result reports the pipeline's decision for one packet.
	Result = dataplane.Result
)

// Transport protocols.
const (
	TCP = netproto.ProtoTCP
	UDP = netproto.ProtoUDP
)

// Common durations.
const (
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
)

// NewVIP builds a VIP from a textual address. It panics on a malformed
// address (intended for literals; parse inputs with netip directly).
func NewVIP(addr string, port uint16, proto netproto.Proto) VIP {
	return VIP{Addr: netip.MustParseAddr(addr), Port: port, Proto: proto}
}

// AddrPort parses a "host:port" backend address, panicking on malformed
// input (intended for literals).
func AddrPort(s string) DIP { return netip.MustParseAddrPort(s) }

// Pool builds a DIP pool from "host:port" literals.
func Pool(addrs ...string) []DIP {
	out := make([]DIP, len(addrs))
	for i, a := range addrs {
		out[i] = AddrPort(a)
	}
	return out
}

// Config bundles the data-plane and control-plane configuration.
type Config struct {
	Dataplane    dataplane.Config
	Controlplane ctrlplane.Config
	// Pipes is the number of independent forwarding pipelines the chip runs
	// (Tofino-class ASICs forward through 2-4 pipes, each with its own
	// stages and SRAM share). Zero or one selects the classic single-pipe
	// switch. With more pipes, traffic is sharded by 5-tuple hash so each
	// connection is pinned to one pipe's ConnTable, the chip SRAM budget and
	// ConnTable sizing target divide evenly across pipes, and Stats reports
	// chip-level aggregates.
	Pipes int
}

// Defaults returns the paper's operating point for a switch provisioned
// for n concurrent connections: 16-bit digests, 6-bit versions, a 256-byte
// TransitTable, a 2048-entry learning filter with 1 ms timeout, and a
// 200K/s insertion CPU.
func Defaults(n int) Config {
	return Config{
		Dataplane:    dataplane.DefaultConfig(n),
		Controlplane: ctrlplane.DefaultConfig(),
	}
}

// Stats aggregates hardware and software counters.
type Stats struct {
	Dataplane    dataplane.Stats
	Controlplane ctrlplane.Metrics
	Connections  int // tracked by the switch software
	MemoryBytes  int // current SRAM consumption
}

// Switch is a SilkRoad load-balancing switch: the ASIC data plane plus its
// management-CPU software, advanced together in virtual time.
//
// Switch methods are safe for concurrent use: the single-pipe facade
// serializes calls the way the single pipeline and the single switch CPU
// would, and the multi-pipe facade (Config.Pipes > 1) locks per pipe, so
// packets of different pipes proceed in parallel. (The inner
// internal/dataplane and internal/ctrlplane types are not independently
// thread-safe.)
type Switch struct {
	mu sync.Mutex
	dp *dataplane.Switch
	cp *ctrlplane.ControlPlane

	// multi is non-nil when the switch runs more than one pipe; dp/cp are
	// nil in that mode and every operation routes through the engine.
	multi *pipes.Engine
}

// NewSwitch builds a switch from cfg.
func NewSwitch(cfg Config) (*Switch, error) {
	if cfg.Pipes > 1 {
		eng, err := pipes.New(pipes.Config{
			Pipes:        cfg.Pipes,
			Dataplane:    cfg.Dataplane,
			Controlplane: cfg.Controlplane,
		})
		if err != nil {
			return nil, err
		}
		return &Switch{multi: eng}, nil
	}
	dp, err := dataplane.New(cfg.Dataplane)
	if err != nil {
		return nil, err
	}
	return &Switch{dp: dp, cp: ctrlplane.New(dp, cfg.Controlplane)}, nil
}

// Pipes returns the number of forwarding pipelines the switch runs.
func (s *Switch) Pipes() int {
	if s.multi != nil {
		return s.multi.NumPipes()
	}
	return 1
}

// Engine exposes the multi-pipe engine, or nil for a single-pipe switch
// (advanced use: per-pipe inspection, shard mapping).
func (s *Switch) Engine() *pipes.Engine { return s.multi }

// Dataplane exposes the underlying data plane (advanced use: resource
// reports, direct table inspection). On a multi-pipe switch it returns the
// first pipe's data plane; use Engine for the others.
func (s *Switch) Dataplane() *dataplane.Switch {
	if s.multi != nil {
		return s.multi.Dataplane(0)
	}
	return s.dp
}

// Controlplane exposes the underlying switch software. On a multi-pipe
// switch it returns the first pipe's slice; use Engine for the others.
func (s *Switch) Controlplane() *ctrlplane.ControlPlane {
	if s.multi != nil {
		return s.multi.Controlplane(0)
	}
	return s.cp
}

// AddVIP announces a VIP with an initial DIP pool. A meter rate of 0
// leaves the VIP unmetered; a positive rate (bytes/s) attaches a hardware
// two-rate three-color meter for performance isolation.
func (s *Switch) AddVIP(now Time, vip VIP, pool []DIP) error {
	if s.multi != nil {
		return s.multi.AddVIP(now, vip, pool, 0)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.AddVIP(now, vip, pool, 0)
}

// AddVIPMetered announces a VIP with a committed-rate meter.
func (s *Switch) AddVIPMetered(now Time, vip VIP, pool []DIP, meterBytesPerSec float64) error {
	if s.multi != nil {
		return s.multi.AddVIP(now, vip, pool, meterBytesPerSec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.AddVIP(now, vip, pool, meterBytesPerSec)
}

// RemoveVIP withdraws a VIP.
func (s *Switch) RemoveVIP(now Time, vip VIP) error {
	if s.multi != nil {
		return s.multi.RemoveVIP(now, vip)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.RemoveVIP(now, vip)
}

// AddDIP adds a backend to vip's pool with full per-connection
// consistency (the 3-step update of §4.3 runs under the hood).
func (s *Switch) AddDIP(now Time, vip VIP, dip DIP) error {
	if s.multi != nil {
		return s.multi.AddDIP(now, vip, dip)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.AddDIP(now, vip, dip)
}

// RemoveDIP removes a backend from vip's pool with PCC.
func (s *Switch) RemoveDIP(now Time, vip VIP, dip DIP) error {
	if s.multi != nil {
		return s.multi.RemoveDIP(now, vip, dip)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.RemoveDIP(now, vip, dip)
}

// UpdatePool replaces vip's pool wholesale with PCC.
func (s *Switch) UpdatePool(now Time, vip VIP, pool []DIP) error {
	if s.multi != nil {
		return s.multi.RequestUpdate(now, vip, pool)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.RequestUpdate(now, vip, pool)
}

// CurrentPool returns the pool new connections map to.
func (s *Switch) CurrentPool(vip VIP) ([]DIP, error) {
	if s.multi != nil {
		return s.multi.CurrentPool(vip)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.CurrentPool(vip)
}

// Process runs one decoded packet through the switch: background CPU work
// due by now executes first, then the ASIC pipeline, then any CPU
// arbitration the pipeline requested (redirected SYNs). On a multi-pipe
// switch the packet is routed to its connection's pipe.
func (s *Switch) Process(now Time, pkt *Packet) Result {
	if s.multi != nil {
		return s.multi.Process(now, pkt)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.process(now, pkt)
}

// ProcessBatch runs a batch of decoded packets through the switch and
// returns one Result per packet, in input order. On a multi-pipe switch the
// batch is sharded by connection and the pipes run in parallel on worker
// goroutines; on a single-pipe switch the batch is processed in order under
// one lock acquisition.
func (s *Switch) ProcessBatch(now Time, pkts []*Packet) []Result {
	if s.multi != nil {
		return s.multi.ProcessBatch(now, pkts)
	}
	results := make([]Result, len(pkts))
	s.mu.Lock()
	for i, pkt := range pkts {
		results[i] = s.process(now, pkt)
	}
	s.mu.Unlock()
	return results
}

func (s *Switch) process(now Time, pkt *Packet) Result {
	s.cp.Advance(now)
	res := s.dp.Process(now, pkt)
	return s.cp.HandleResult(now, pkt, res)
}

// Forward processes a raw IPv4/IPv6 packet: decode, balance, rewrite the
// destination to the chosen DIP in place, and return that DIP. The
// returned error distinguishes undecodable packets, unknown VIPs and
// meter drops.
func (s *Switch) Forward(now Time, raw []byte) (DIP, error) {
	var pkt Packet
	if err := netproto.Decode(raw, &pkt); err != nil {
		return DIP{}, err
	}
	res := s.Process(now, &pkt)
	switch res.Verdict {
	case dataplane.VerdictForward:
		if err := netproto.RewriteDst(raw, res.DIP); err != nil {
			return DIP{}, err
		}
		return res.DIP, nil
	case dataplane.VerdictNoVIP:
		return DIP{}, fmt.Errorf("silkroad: %v is not a VIP", dataplane.VIPOf(pkt.Tuple))
	case dataplane.VerdictMeterDrop:
		return DIP{}, fmt.Errorf("silkroad: packet dropped by VIP meter")
	case dataplane.VerdictNoBackend:
		return DIP{}, fmt.Errorf("silkroad: VIP %v has no backends", dataplane.VIPOf(pkt.Tuple))
	default:
		return DIP{}, fmt.Errorf("silkroad: unresolved verdict %v", res.Verdict)
	}
}

// ForwardIPIP processes a raw IPv4 packet and returns it encapsulated
// IP-in-IP toward the chosen DIP (Maglev-style forwarding with direct
// server return: the inner packet keeps the VIP destination, the DIP
// decapsulates). selfAddr is the outer source (this load balancer).
func (s *Switch) ForwardIPIP(now Time, raw []byte, selfAddr netip.Addr) ([]byte, DIP, error) {
	var pkt Packet
	if err := netproto.Decode(raw, &pkt); err != nil {
		return nil, DIP{}, err
	}
	res := s.Process(now, &pkt)
	if res.Verdict != dataplane.VerdictForward {
		return nil, DIP{}, fmt.Errorf("silkroad: unresolved verdict %v", res.Verdict)
	}
	enc, err := netproto.EncapIPIP(nil, selfAddr, res.DIP.Addr(), raw)
	if err != nil {
		return nil, DIP{}, err
	}
	return enc, res.DIP, nil
}

// EndConnection tells the switch a connection terminated, freeing its
// ConnTable entry and possibly retiring a pool version.
func (s *Switch) EndConnection(now Time, t FiveTuple) {
	if s.multi != nil {
		s.multi.EndConnection(now, t)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cp.EndConnection(now, t)
}

// Advance runs background work (learning-filter drains, CPU insertions,
// update state transitions, aging) due at or before now.
func (s *Switch) Advance(now Time) {
	if s.multi != nil {
		s.multi.Advance(now)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cp.Advance(now)
}

// NextEventTime returns when the switch next has background work due.
func (s *Switch) NextEventTime() (Time, bool) {
	if s.multi != nil {
		return s.multi.NextEventTime()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.NextEventTime()
}

// NewHealthChecker builds a §7-style DIP health checker bound to this
// switch: failed probes drive PCC-preserving RemoveDIP updates, recoveries
// drive AddDIP. The caller advances the checker alongside the switch:
//
//	hc := sw.NewHealthChecker(health.DefaultConfig(), probe)
//	hc.Watch(vip, dip)
//	... hc.Advance(now); sw.Advance(now) ...
func (s *Switch) NewHealthChecker(cfg health.Config, probe health.ProbeFunc) *health.Checker {
	return health.New(cfg, lockedManager{s}, probe)
}

// lockedManager adapts the switch's locked facade as a health.PoolManager.
type lockedManager struct{ s *Switch }

func (m lockedManager) AddDIP(now Time, vip VIP, dip DIP) error {
	return m.s.AddDIP(now, vip, dip)
}

func (m lockedManager) RemoveDIP(now Time, vip VIP, dip DIP) error {
	return m.s.RemoveDIP(now, vip, dip)
}

// Stats returns combined counters. On a multi-pipe switch every field is
// the chip-level aggregate over the pipes (sums; MaxInsertQueue is the
// per-pipe maximum).
func (s *Switch) Stats() Stats {
	if s.multi != nil {
		agg := s.multi.Stats()
		return Stats{
			Dataplane:    agg.Dataplane,
			Controlplane: agg.Controlplane,
			Connections:  agg.Connections,
			MemoryBytes:  agg.MemoryBytes,
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dataplane:    s.dp.Stats(),
		Controlplane: s.cp.Metrics(),
		Connections:  s.cp.TrackedConns(),
		MemoryBytes:  s.dp.Memory().Total(),
	}
}
