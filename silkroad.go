// Package silkroad is a faithful reimplementation of SilkRoad (Miao et al.,
// SIGCOMM 2017): a stateful layer-4 load balancer that runs entirely in a
// switching ASIC, keeping per-connection state in on-chip SRAM and
// guaranteeing per-connection consistency (PCC) across DIP pool updates.
//
// The package wraps the two halves of the system — the hardware data plane
// (internal/dataplane: ConnTable, VIPTable, DIPPoolTable, TransitTable,
// learning filter on a modeled ASIC) and the switch software
// (internal/ctrlplane: cuckoo insertions, the 3-step PCC update, version
// management) — behind one Switch type driven by explicit virtual time:
//
//	sw, _ := silkroad.NewSwitch(silkroad.Defaults(1_000_000))
//	vip := silkroad.NewVIP("20.0.0.1", 80, silkroad.TCP)
//	sw.AddVIP(0, vip, silkroad.Pool("10.0.0.1:20", "10.0.0.2:20"))
//	dip, _ := sw.Forward(now, rawPacket)           // full packet path
//	sw.RemoveDIP(now, vip, silkroad.AddrPort("10.0.0.2:20")) // PCC update
//
// The switch is driven through one event runtime (internal/sched) with two
// interchangeable drivers. Under virtual time, callers pass simtime-style
// timestamps (nanoseconds) and call Advance explicitly, which makes
// behaviour reproducible down to the event sequence — the flow-level
// simulator and the benchmark harness run this way. Under the wall-clock
// driver, Switch.Run(ctx) maps the same timeline onto monotonic real time
// and executes all timed work autonomously — the real-socket demo in
// cmd/silkroadd runs this way, with no Advance calls at all.
package silkroad

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/faults"
	"repro/internal/flightrec"
	"repro/internal/health"
	"repro/internal/intent"
	"repro/internal/netproto"
	"repro/internal/pipes"
	"repro/internal/simtime"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// Sentinel errors returned (wrapped with context) by the packet-path
// methods; match them with errors.Is.
var (
	// ErrUndecodable: the raw bytes are not a parseable IPv4/IPv6 packet.
	ErrUndecodable = errors.New("undecodable packet")
	// ErrNotVIP: the packet's destination is not a registered VIP.
	ErrNotVIP = errors.New("destination is not a VIP")
	// ErrMeterDrop: the VIP's meter marked the packet red (§6 isolation).
	ErrMeterDrop = errors.New("dropped by VIP meter")
	// ErrNoBackend: the selected DIP pool version holds no backends.
	ErrNoBackend = errors.New("no backend available")
)

// Re-exported core types. VIP identifies a service; DIP is a backend
// address; FiveTuple identifies a connection.
type (
	// VIP is a virtual IP service endpoint (address, port, protocol).
	VIP = dataplane.VIP
	// DIP is a direct (backend) address.
	DIP = dataplane.DIP
	// FiveTuple identifies a transport connection.
	FiveTuple = netproto.FiveTuple
	// Packet is a decoded L3/L4 packet.
	Packet = netproto.Packet
	// Frame is the parse-once view of a raw packet: the wire bytes plus the
	// header offsets and five-tuple extracted in a single pass. It is the
	// currency of the wire-native packet path (ProcessFrames, the tunnel);
	// fill one with ParseFrame.
	Frame = netproto.Frame
	// Time is virtual time in nanoseconds.
	Time = simtime.Time
	// Duration is a span of virtual time in nanoseconds.
	Duration = simtime.Duration
	// Result reports the pipeline's decision for one packet.
	Result = dataplane.Result
	// Telemetry is the default metrics registry: attach one via
	// Config.Telemetry, scrape it with Snapshot or WritePrometheus.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of every instrument.
	TelemetrySnapshot = telemetry.Snapshot
	// PipeStats is one pipe's counters as reported by Switch.PerPipe.
	PipeStats = pipes.PipeStats
	// FlightRecorder captures per-packet traces and a control-plane event
	// journal in fixed-size rings; attach one via Config.FlightRecorder.
	FlightRecorder = flightrec.Recorder
	// FlightRecorderConfig sizes a flight recorder's rings and sampling.
	FlightRecorderConfig = flightrec.Config
	// Flow is an armed flow filter returned by Switch.Trace.
	Flow = flightrec.Flow
	// PacketRecord is one INT-style per-packet trace record.
	PacketRecord = flightrec.PacketRecord
	// JournalRecord is one control-plane journal entry.
	JournalRecord = flightrec.JournalRecord
	// FaultPlan is a deterministic fault schedule; attach one via
	// Config.Faults.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault in a FaultPlan.
	FaultEvent = faults.Event
	// FaultKind identifies a fault class (FaultDIPDown, FaultCPUStall, ...).
	FaultKind = faults.Kind
	// FaultGenConfig parameterizes GenerateFaults.
	FaultGenConfig = faults.GenConfig
	// FaultInjector executes the attached FaultPlan on the switch runtime;
	// Switch.Faults returns it.
	FaultInjector = faults.Injector
	// HealthConfig parameterizes Switch.NewHealthChecker; start from
	// HealthDefaults (the paper's §7 operating point).
	HealthConfig = health.Config
	// HealthChecker is the BFD-style prober returned by NewHealthChecker.
	HealthChecker = health.Checker
	// HealthProbe reports whether a DIP answered a probe sent at now;
	// FaultInjector.WrapProbe layers injected outages over one.
	HealthProbe = health.ProbeFunc
	// SLOConfig parameterizes the SLO evaluator attached via Config.SLO:
	// evaluation interval, burn-rate windows and the alert policy.
	SLOConfig = slo.Config
	// SLOEvaluator is the periodic SLO engine; Switch.SLO returns it.
	SLOEvaluator = slo.Evaluator
	// SLOReport is the evaluator's published SLI/forecast/alert state.
	SLOReport = slo.Report
	// SLORule is one burn-rate alert policy entry.
	SLORule = slo.Rule
	// SLOSignals are the chip-wide SLIs derived over one window.
	SLOSignals = slo.Signals
	// SLOPipeForecast is the occupancy forecaster's per-pipe output.
	SLOPipeForecast = slo.PipeForecast
	// SLOVIPIndicators is one VIP's per-window SLI row.
	SLOVIPIndicators = slo.VIPSLI
	// AlertStatus is one alert's externally visible state.
	AlertStatus = slo.AlertStatus
	// AlertTransition is one alert state-machine edge, with its flightrec
	// journal cursor exemplar.
	AlertTransition = slo.Transition
	// FleetSLOReport is the cluster roll-up of per-member SLO reports.
	FleetSLOReport = slo.FleetReport
)

// Alert severities, re-exported for policy construction.
const (
	SeverityTicket = slo.SeverityTicket
	SeverityPage   = slo.SeverityPage
)

// DefaultSLORules returns the stock alert policy (insert pressure, pending
// p99, digest aliasing, degraded exposure, forecast exhaustion).
func DefaultSLORules() []SLORule { return slo.DefaultRules() }

// Fault kinds, re-exported for plan construction.
const (
	FaultDIPDown    = faults.DIPDown
	FaultDIPUp      = faults.DIPUp
	FaultCPUStall   = faults.CPUStall
	FaultCPUSlow    = faults.CPUSlow
	FaultTableLimit = faults.TableLimit
	FaultDigestLoss = faults.DigestLoss
)

// GenerateFaults builds a seeded fault schedule: same config, same plan.
func GenerateFaults(cfg FaultGenConfig) FaultPlan { return faults.Generate(cfg) }

// HealthDefaults returns the paper's §7 health-checking operating point
// (10 s probe interval, BFD-style 3-miss failover, 100 B probes).
func HealthDefaults() HealthConfig { return health.DefaultConfig() }

// NewTelemetry creates a metrics registry ready to attach to a switch via
// Config.Telemetry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// NewFlightRecorder creates a flight recorder ready to attach via
// Config.FlightRecorder. The zero config uses the default ring sizes
// (4096 packet records, 8192 journal records) with sampling off.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return flightrec.New(cfg)
}

// ErrNoRecorder: the switch was built without a flight recorder.
var ErrNoRecorder = errors.New("no flight recorder attached")

// WritePrometheus renders a telemetry snapshot in Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, s TelemetrySnapshot) error {
	return telemetry.WritePrometheus(w, s)
}

// Transport protocols.
const (
	TCP = netproto.ProtoTCP
	UDP = netproto.ProtoUDP
)

// TCP flag bits for Packet.TCPFlags.
const (
	FlagFIN = netproto.FlagFIN
	FlagSYN = netproto.FlagSYN
	FlagRST = netproto.FlagRST
	FlagACK = netproto.FlagACK
)

// Verdict classifies the outcome of processing one packet; see
// Result.Verdict.
type Verdict = dataplane.Verdict

// Verdicts.
const (
	// VerdictForward: the packet was forwarded to Result.DIP.
	VerdictForward = dataplane.VerdictForward
	// VerdictNoVIP: destination is not a registered VIP.
	VerdictNoVIP = dataplane.VerdictNoVIP
	// VerdictMeterDrop: the VIP's meter marked the packet red.
	VerdictMeterDrop = dataplane.VerdictMeterDrop
	// VerdictNoBackend: the selected DIP pool version holds no backends.
	VerdictNoBackend = dataplane.VerdictNoBackend
)

// Common durations.
const (
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
)

// ParseFrame parses a raw IPv4/IPv6 packet into f in one pass. f.Data
// aliases data; the frame is valid only while those bytes are. It accepts
// exactly the packets netproto.Decode accepts.
func ParseFrame(data []byte, f *Frame) error { return netproto.ParseFrame(data, f) }

// NewVIP builds a VIP from a textual address. It panics on a malformed
// address (intended for literals; parse inputs with netip directly).
func NewVIP(addr string, port uint16, proto netproto.Proto) VIP {
	return VIP{Addr: netip.MustParseAddr(addr), Port: port, Proto: proto}
}

// AddrPort parses a "host:port" backend address, panicking on malformed
// input (intended for literals).
func AddrPort(s string) DIP { return netip.MustParseAddrPort(s) }

// Pool builds a DIP pool from "host:port" literals.
func Pool(addrs ...string) []DIP {
	out := make([]DIP, len(addrs))
	for i, a := range addrs {
		out[i] = AddrPort(a)
	}
	return out
}

// Config bundles the data-plane and control-plane configuration.
type Config struct {
	Dataplane    dataplane.Config
	Controlplane ctrlplane.Config
	// Pipes is the number of independent forwarding pipelines the chip runs
	// (Tofino-class ASICs forward through 2-4 pipes, each with its own
	// stages and SRAM share). Zero or one selects the classic single-pipe
	// switch. With more pipes, traffic is sharded by 5-tuple hash so each
	// connection is pinned to one pipe's ConnTable, the chip SRAM budget and
	// ConnTable sizing target divide evenly across pipes, and Stats reports
	// chip-level aggregates.
	Pipes int
	// Telemetry, when non-nil, attaches a metrics registry: the data plane,
	// control plane and learning filter of every pipe report their events
	// into it, and Switch.Telemetry exposes it for scraping. Nil keeps the
	// hot path telemetry-free (one branch per event site).
	Telemetry *Telemetry
	// FlightRecorder, when non-nil, attaches a flight recorder: per-packet
	// trace rings for armed/sampled flows and a control-plane event journal.
	// It wraps Telemetry (when both are set) so the data plane still sees a
	// single tracer, keeping the untraced hot path at one branch.
	FlightRecorder *FlightRecorder
	// Clock is the runtime's time source, read by Switch.Now and driven
	// against by Switch.Run. Nil installs a monotonic wall clock anchored
	// at NewSwitch; tests substitute NewManualClock.
	Clock Clock
	// Faults, when non-nil, attaches a fault injector executing the plan on
	// the switch runtime: DIP outages (via health probes wrapped with
	// Switch.Faults().WrapProbe), CPU stalls and brownouts, ConnTable
	// occupancy squeezes and learn-digest loss all fire at their scheduled
	// virtual times, deterministically. Nil keeps the switch fault-free.
	Faults *FaultPlan
	// SLO, when non-nil, attaches the SLO evaluator (internal/slo): a
	// periodic scheduler source that derives SLIs, occupancy forecasts and
	// burn-rate alerts from the telemetry registry. Requires Telemetry.
	// When a FlightRecorder is also attached and the config names no
	// Journal source, alert transitions capture its journal cursor as an
	// exemplar automatically.
	SLO *SLOConfig
}

// Defaults returns the paper's operating point for a switch provisioned
// for n concurrent connections: 16-bit digests, 6-bit versions, a 256-byte
// TransitTable, a 2048-entry learning filter with 1 ms timeout, and a
// 200K/s insertion CPU.
func Defaults(n int) Config {
	return Config{
		Dataplane:    dataplane.DefaultConfig(n),
		Controlplane: ctrlplane.DefaultConfig(),
	}
}

// Stats aggregates hardware and software counters.
type Stats struct {
	Dataplane    dataplane.Stats
	Controlplane ctrlplane.Metrics
	Connections  int // tracked by the switch software
	MemoryBytes  int // current SRAM consumption
}

// Switch is a SilkRoad load-balancing switch: the ASIC data plane plus its
// management-CPU software, advanced together in virtual time.
//
// Switch methods are safe for concurrent use: the single-pipe facade
// serializes calls the way the single pipeline and the single switch CPU
// would, and the multi-pipe facade (Config.Pipes > 1) locks per pipe, so
// packets of different pipes proceed in parallel. (The inner
// internal/dataplane and internal/ctrlplane types are not independently
// thread-safe.)
type Switch struct {
	mu sync.Mutex
	dp *dataplane.Switch
	cp *ctrlplane.ControlPlane

	// multi is non-nil when the switch runs more than one pipe; dp/cp are
	// nil in that mode and every operation routes through the engine.
	multi *pipes.Engine

	// rt is the switch's event runtime (see runtime.go): the scheduler
	// behind Switch.Run, Every and registered health checkers.
	rt *eventRuntime

	tel *Telemetry      // nil when no registry is attached
	rec *FlightRecorder // nil when no flight recorder is attached
	inj *FaultInjector  // nil when no fault plan is attached
	slo *SLOEvaluator   // nil when no SLO config is attached

	// intent is the declarative desired-state store and its reconciler
	// (see intent.go): Apply converges whole specs, and the imperative
	// methods edit single keys of the same desired state.
	intent *intentState
}

// tracerFor composes the configured observability sinks into the single
// Tracer the data plane sees: the flight recorder wraps the registry when
// both are present. The nil return keeps the tracer==nil fast path — a nil
// *Telemetry boxed into the Tracer interface would defeat it.
func tracerFor(cfg Config) telemetry.Tracer {
	switch {
	case cfg.FlightRecorder != nil:
		if cfg.Telemetry != nil {
			cfg.FlightRecorder.SetInner(cfg.Telemetry)
		}
		return cfg.FlightRecorder
	case cfg.Telemetry != nil:
		return cfg.Telemetry
	default:
		return nil
	}
}

// NewSwitch builds a switch from cfg.
func NewSwitch(cfg Config) (*Switch, error) {
	if cfg.SLO != nil && cfg.Telemetry == nil {
		return nil, errors.New("silkroad: Config.SLO requires Config.Telemetry")
	}
	tracer := tracerFor(cfg)
	if cfg.Pipes > 1 {
		pcfg := pipes.Config{
			Pipes:        cfg.Pipes,
			Dataplane:    cfg.Dataplane,
			Controlplane: cfg.Controlplane,
		}
		if tracer != nil {
			pcfg.Tracer = tracer
		}
		eng, err := pipes.New(pcfg)
		if err != nil {
			return nil, err
		}
		s := &Switch{multi: eng, tel: cfg.Telemetry, rec: cfg.FlightRecorder}
		s.rt = newRuntime(cfg.Clock, s)
		s.attachIntent(tracer)
		s.attachFaults(cfg, tracer)
		s.attachSLO(cfg)
		return s, nil
	}
	dcfg := cfg.Dataplane
	if tracer != nil {
		dcfg.Tracer = tracer
	}
	dp, err := dataplane.New(dcfg)
	if err != nil {
		return nil, err
	}
	s := &Switch{
		dp:  dp,
		cp:  ctrlplane.New(dp, cfg.Controlplane),
		tel: cfg.Telemetry,
		rec: cfg.FlightRecorder,
	}
	s.rt = newRuntime(cfg.Clock, s)
	s.attachIntent(tracer)
	s.attachFaults(cfg, tracer)
	s.attachSLO(cfg)
	return s, nil
}

// attachSLO builds the SLO evaluator for Config.SLO (if any) and registers
// it with the runtime, so evaluations fire in time order with all other
// scheduled work under both Run and AdvanceTo. The evaluator reads only
// the telemetry registry's atomic instruments — it never takes a pipe lock,
// so evaluation cannot contend with ProcessBatch.
func (s *Switch) attachSLO(cfg Config) {
	if cfg.SLO == nil {
		return
	}
	sc := *cfg.SLO
	if sc.Journal == nil && cfg.FlightRecorder != nil {
		sc.Journal = cfg.FlightRecorder.JournalSeq
	}
	if sc.MaxPipes == 0 && cfg.Pipes > 8 {
		sc.MaxPipes = cfg.Pipes
	}
	s.slo = slo.New(cfg.Telemetry, s.Now(), sc)
	s.rt.mu.Lock()
	s.rt.sched.AddSource(s.slo)
	s.rt.mu.Unlock()
}

// SLO returns the attached SLO evaluator, or nil when the switch was built
// without one.
func (s *Switch) SLO() *SLOEvaluator { return s.slo }

// attachIntent builds the desired-state reconciler over the switch's raw
// routing layer and registers its retry work with the runtime, so backoff
// deadlines fire in time order under both Run and AdvanceTo.
func (s *Switch) attachIntent(tracer telemetry.Tracer) {
	s.intent = &intentState{
		rec: intent.New(intentTarget{s}, intent.Config{Tracer: tracer}),
	}
	s.rt.mu.Lock()
	s.rt.sched.AddSource(intentSource{s})
	s.rt.mu.Unlock()
}

// attachFaults builds the injector for Config.Faults (if any) and
// registers it with the switch runtime, so faults fire in time order with
// all other scheduled work under both Run and AdvanceTo.
func (s *Switch) attachFaults(cfg Config, tracer telemetry.Tracer) {
	if cfg.Faults == nil {
		return
	}
	inj := faults.NewInjector(*cfg.Faults, switchTarget{s})
	if tracer != nil {
		inj.SetTracer(tracer)
	}
	s.inj = inj
	s.rt.mu.Lock()
	s.rt.sched.AddSource(inj)
	s.rt.mu.Unlock()
}

// switchTarget adapts the switch as the injector's attack surface: each
// knob routes to one pipe's control or data plane under that pipe's lock.
type switchTarget struct{ s *Switch }

func (t switchTarget) valid(pipe int) bool { return pipe >= 0 && pipe < t.s.Pipes() }

func (t switchTarget) NumPipes() int { return t.s.Pipes() }

func (t switchTarget) StallCPU(now Time, pipe int, d Duration) {
	if !t.valid(pipe) {
		return
	}
	t.s.inspect(pipe, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
		cp.StallCPU(now, d)
	})
}

func (t switchTarget) SetInsertRateScale(pipe int, scale float64) {
	if !t.valid(pipe) {
		return
	}
	t.s.inspect(pipe, func(_ *dataplane.Switch, cp *ctrlplane.ControlPlane) {
		cp.SetInsertRateScale(scale)
	})
}

func (t switchTarget) SetConnTableLimit(pipe, limit int) {
	if !t.valid(pipe) {
		return
	}
	t.s.inspect(pipe, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
		dp.SetConnTableLimit(limit)
	})
}

func (t switchTarget) SetLearnLoss(pipe int, rate float64, seed uint64) {
	if !t.valid(pipe) {
		return
	}
	t.s.inspect(pipe, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
		dp.LearnFilter().SetLoss(rate, seed)
	})
}

// Faults returns the attached fault injector, or nil when the switch was
// built without a fault plan.
func (s *Switch) Faults() *FaultInjector { return s.inj }

// PipeDegraded is one pipe's degraded-mode status.
type PipeDegraded struct {
	Pipe     int  `json:"pipe"`
	Degraded bool `json:"degraded"`
	Entries  int  `json:"entries"`  // current ConnTable occupancy
	Capacity int  `json:"capacity"` // effective ConnTable capacity
}

// DegradedState is the switch-wide degraded-mode summary: Degraded is
// true when any pipe is above its high watermark and serving new flows
// stateless (existing connections keep their ConnTable pins).
type DegradedState struct {
	Degraded bool           `json:"degraded"`
	Pipes    []PipeDegraded `json:"pipes"`
}

// DegradedState reports each pipe's degraded-mode status and ConnTable
// occupancy. cmd/silkroadd serves this from /readyz.
func (s *Switch) DegradedState() DegradedState {
	var st DegradedState
	for i := 0; i < s.Pipes(); i++ {
		s.inspect(i, func(dp *dataplane.Switch, _ *ctrlplane.ControlPlane) {
			entries, capacity := dp.OccupancyInfo()
			pd := PipeDegraded{Pipe: i, Degraded: dp.Degraded(), Entries: entries, Capacity: capacity}
			st.Pipes = append(st.Pipes, pd)
			if pd.Degraded {
				st.Degraded = true
			}
		})
	}
	return st
}

// Telemetry returns the attached metrics registry, or nil when the switch
// was built without one.
func (s *Switch) Telemetry() *Telemetry { return s.tel }

// FlightRecorder returns the attached flight recorder, or nil when the
// switch was built without one.
func (s *Switch) FlightRecorder() *FlightRecorder { return s.rec }

// Trace arms the flight recorder's flow filter for t and returns a handle
// whose Records method yields the connection's recorded pipeline path (one
// PacketRecord per packet, plus the CPU insertion that installed its
// ConnTable entry). Stop the handle to disarm. Fails with ErrNoRecorder if
// the switch has no flight recorder attached.
func (s *Switch) Trace(t FiveTuple) (*Flow, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("silkroad: %w", ErrNoRecorder)
	}
	return s.rec.Arm(t), nil
}

// inspect runs fn against pipe i's data and control plane under that
// pipe's lock — the shared plumbing for the debug endpoints' table dumps.
func (s *Switch) inspect(i int, fn func(dp *dataplane.Switch, cp *ctrlplane.ControlPlane)) {
	if s.multi != nil {
		s.multi.Inspect(i, fn)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.dp, s.cp)
}

// Pipes returns the number of forwarding pipelines the switch runs.
func (s *Switch) Pipes() int {
	if s.multi != nil {
		return s.multi.NumPipes()
	}
	return 1
}

// Engine exposes the multi-pipe engine, or nil for a single-pipe switch
// (advanced use: per-pipe inspection, shard mapping).
func (s *Switch) Engine() *pipes.Engine { return s.multi }

// Dataplane exposes the underlying data plane (advanced use: resource
// reports, direct table inspection). On a multi-pipe switch it returns the
// first pipe's data plane; use Engine for the others.
func (s *Switch) Dataplane() *dataplane.Switch {
	if s.multi != nil {
		return s.multi.Dataplane(0)
	}
	return s.dp
}

// Controlplane exposes the underlying switch software. On a multi-pipe
// switch it returns the first pipe's slice; use Engine for the others.
func (s *Switch) Controlplane() *ctrlplane.ControlPlane {
	if s.multi != nil {
		return s.multi.Controlplane(0)
	}
	return s.cp
}

// VIPOption configures one VIP at announcement time.
type VIPOption func(*vipOptions)

type vipOptions struct {
	meterBytesPerSec float64
}

// WithMeter attaches a hardware two-rate three-color meter with the given
// committed rate in bytes per second (§6 performance isolation). A rate of
// 0 leaves the VIP unmetered.
func WithMeter(bytesPerSec float64) VIPOption {
	return func(o *vipOptions) { o.meterBytesPerSec = bytesPerSec }
}

// AddVIP announces a VIP with an initial DIP pool. Options configure
// per-VIP hardware features, e.g. WithMeter for rate isolation.
//
// Like every imperative method, AddVIP is a single-key edit of the
// switch's desired state applied through the reconcile engine — the same
// path Switch.Apply drives for whole specs.
func (s *Switch) AddVIP(now Time, vip VIP, pool []DIP, opts ...VIPOption) error {
	var o vipOptions
	for _, opt := range opts {
		opt(&o)
	}
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.EditAdd(now, vip, pool, o.meterBytesPerSec)
}

// AddVIPMetered announces a VIP with a committed-rate meter.
//
// Deprecated: use AddVIP with WithMeter instead.
func (s *Switch) AddVIPMetered(now Time, vip VIP, pool []DIP, meterBytesPerSec float64) error {
	return s.AddVIP(now, vip, pool, WithMeter(meterBytesPerSec))
}

// RemoveVIP withdraws a VIP.
func (s *Switch) RemoveVIP(now Time, vip VIP) error {
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.EditRemove(now, vip)
}

// AddDIP adds a backend to vip's pool with full per-connection
// consistency (the 3-step update of §4.3 runs under the hood).
func (s *Switch) AddDIP(now Time, vip VIP, dip DIP) error {
	defer s.poke()
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.EditPool(now, vip, func(pool []DIP) ([]DIP, error) {
		return append(pool, dip), nil
	})
}

// RemoveDIP removes a backend from vip's pool with PCC.
func (s *Switch) RemoveDIP(now Time, vip VIP, dip DIP) error {
	defer s.poke()
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.EditPool(now, vip, func(pool []DIP) ([]DIP, error) {
		out := pool[:0]
		found := false
		for _, d := range pool {
			if !found && d == dip {
				found = true
				continue
			}
			out = append(out, d)
		}
		if !found {
			return nil, fmt.Errorf("silkroad: DIP %v not in pool of %v", dip, vip)
		}
		return out, nil
	})
}

// UpdatePool replaces vip's pool wholesale with PCC. Updating to the pool
// the switch is already at (or already heading for) is a no-op: the
// reconcile engine diffs against the newest requested state and issues no
// hardware write.
func (s *Switch) UpdatePool(now Time, vip VIP, pool []DIP) error {
	defer s.poke()
	st := s.intent
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rec.EditPool(now, vip, func([]DIP) ([]DIP, error) {
		return append([]DIP(nil), pool...), nil
	})
}

// CurrentPool returns the pool new connections map to.
func (s *Switch) CurrentPool(vip VIP) ([]DIP, error) {
	if s.multi != nil {
		return s.multi.CurrentPool(vip)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.CurrentPool(vip)
}

// Process runs one decoded packet through the switch: background CPU work
// due by now executes first, then the ASIC pipeline, then any CPU
// arbitration the pipeline requested (redirected SYNs). On a multi-pipe
// switch the packet is routed to its connection's pipe.
func (s *Switch) Process(now Time, pkt *Packet) Result {
	var res Result
	if s.multi != nil {
		res = s.multi.Process(now, pkt)
	} else {
		s.mu.Lock()
		res = s.process(now, pkt)
		s.mu.Unlock()
	}
	if resultSchedulesWork(res) {
		s.poke()
	}
	return res
}

// resultSchedulesWork reports whether a packet outcome may have queued new
// timed work with an earlier deadline than the runtime planned to wake for
// (a learn event's flush, a redirected SYN's CPU insertion). Pure
// ConnTable hits only push aging deadlines later, so they never need a
// driver wakeup — which keeps the steady-state packet path poke-free.
func resultSchedulesWork(res Result) bool {
	return res.Learned || !res.ConnHit
}

// ProcessFrame runs one parsed wire frame through the switch — the
// bytes-native form of Process. The verdict's DIP plus the frame's cached
// offsets are everything TX needs for an in-place rewrite or encap with
// zero re-decode.
func (s *Switch) ProcessFrame(now Time, f *Frame) Result {
	var res Result
	if s.multi != nil {
		res = s.multi.ProcessFrame(now, f)
	} else {
		s.mu.Lock()
		res = s.processFrame(now, f)
		s.mu.Unlock()
	}
	if resultSchedulesWork(res) {
		s.poke()
	}
	return res
}

// ProcessBatch runs a batch of decoded packets through the switch and
// returns one Result per packet, in input order. On a multi-pipe switch
// the batch is sharded by connection onto the engine's persistent per-pipe
// workers; on a single-pipe switch the batch is processed in order under
// one lock acquisition.
func (s *Switch) ProcessBatch(now Time, pkts []*Packet) []Result {
	var results []Result
	if s.multi != nil {
		results = s.multi.ProcessBatch(now, pkts)
	} else {
		results = make([]Result, len(pkts))
		s.mu.Lock()
		for i, pkt := range pkts {
			results[i] = s.process(now, pkt)
		}
		s.mu.Unlock()
	}
	// One poke covers the whole batch, even when several pipes queued new
	// deadlines: the engine returns only after every pipe's share has
	// completed, so all that work is already scheduled when the scan below
	// runs, and Poke merely makes the wall driver re-read NextDue — the
	// minimum deadline across every pipe — rather than waking it for a
	// specific pipe. Breaking on the first hit is therefore wake-loss-free.
	for i := range results {
		if resultSchedulesWork(results[i]) {
			s.poke()
			break
		}
	}
	return results
}

// ProcessFrames runs a batch of parsed wire frames through the switch and
// returns one Result per frame, in input order — ProcessBatch on the
// bytes-native currency. The pipeline reads the frames but never writes
// them; TX rewrites (Frame.RewriteDst, EncapIPIP) belong to the caller
// once the verdicts are back.
func (s *Switch) ProcessFrames(now Time, frames []Frame) []Result {
	results := make([]Result, len(frames))
	s.ProcessFramesInto(now, frames, results)
	return results
}

// ProcessFramesInto is ProcessFrames writing into a caller-provided
// results slice (len(results) >= len(frames)) — the allocation-free form
// the socket RX loop uses, reusing frame and result buffers across
// batches. results[i] corresponds to frames[i].
func (s *Switch) ProcessFramesInto(now Time, frames []Frame, results []Result) {
	if s.multi != nil {
		s.multi.ProcessFramesInto(now, frames, results)
	} else {
		s.mu.Lock()
		for i := range frames {
			results[i] = s.processFrame(now, &frames[i])
		}
		s.mu.Unlock()
	}
	// Same single-poke logic as ProcessBatch: all new deadlines are already
	// scheduled by the time the engine returns, so one wake-up suffices.
	for i := range frames {
		if resultSchedulesWork(results[i]) {
			s.poke()
			break
		}
	}
}

// Close releases the switch's background machinery: on a multi-pipe
// switch it stops the engine's per-pipe batch workers and waits for them
// to exit (ProcessBatch keeps working afterwards — batches then run on
// the caller's goroutine). It does not stop an active Run; cancel that
// context first. Close is idempotent and safe to call concurrently with
// the packet path.
func (s *Switch) Close() error {
	if s.multi != nil {
		s.multi.Close()
	}
	return nil
}

func (s *Switch) process(now Time, pkt *Packet) Result {
	s.cp.Advance(now)
	res := s.dp.Process(now, pkt)
	return s.cp.HandleResult(now, pkt, res)
}

func (s *Switch) processFrame(now Time, f *Frame) Result {
	s.cp.Advance(now)
	res := s.dp.ProcessFrame(now, f)
	s.cp.HandleTupleResultInto(now, f.Tuple, &res)
	return res
}

// verdictError maps a non-forwarding verdict to its wrapped sentinel, so
// Forward and ForwardIPIP agree on error semantics and callers can test
// with errors.Is.
func verdictError(res Result, t FiveTuple) error {
	switch res.Verdict {
	case dataplane.VerdictNoVIP:
		return fmt.Errorf("silkroad: %v: %w", dataplane.VIPOf(t), ErrNotVIP)
	case dataplane.VerdictMeterDrop:
		return fmt.Errorf("silkroad: %v: %w", dataplane.VIPOf(t), ErrMeterDrop)
	case dataplane.VerdictNoBackend:
		return fmt.Errorf("silkroad: %v: %w", dataplane.VIPOf(t), ErrNoBackend)
	default:
		return fmt.Errorf("silkroad: unresolved verdict %v", res.Verdict)
	}
}

// Forward processes a raw IPv4/IPv6 packet: decode, balance, rewrite the
// destination to the chosen DIP in place, and return that DIP. Failures
// wrap the package sentinels (ErrUndecodable, ErrNotVIP, ErrMeterDrop,
// ErrNoBackend); match them with errors.Is.
func (s *Switch) Forward(now Time, raw []byte) (DIP, error) {
	var f Frame
	if err := netproto.ParseFrame(raw, &f); err != nil {
		return DIP{}, fmt.Errorf("silkroad: %w: %v", ErrUndecodable, err)
	}
	res := s.ProcessFrame(now, &f)
	if res.Verdict != dataplane.VerdictForward {
		return DIP{}, verdictError(res, f.Tuple)
	}
	// The frame's cached offsets make the rewrite a pure in-place edit —
	// the one parse above is the only decode on this path.
	if err := f.RewriteDst(res.DIP); err != nil {
		return DIP{}, err
	}
	return res.DIP, nil
}

// ForwardIPIP processes a raw IPv4 packet and returns it encapsulated
// IP-in-IP toward the chosen DIP (Maglev-style forwarding with direct
// server return: the inner packet keeps the VIP destination, the DIP
// decapsulates). selfAddr is the outer source (this load balancer).
func (s *Switch) ForwardIPIP(now Time, raw []byte, selfAddr netip.Addr) ([]byte, DIP, error) {
	var f Frame
	if err := netproto.ParseFrame(raw, &f); err != nil {
		return nil, DIP{}, fmt.Errorf("silkroad: %w: %v", ErrUndecodable, err)
	}
	res := s.ProcessFrame(now, &f)
	if res.Verdict != dataplane.VerdictForward {
		return nil, DIP{}, verdictError(res, f.Tuple)
	}
	enc, err := netproto.EncapIPIP(nil, selfAddr, res.DIP.Addr(), f.Data)
	if err != nil {
		return nil, DIP{}, err
	}
	return enc, res.DIP, nil
}

// EndConnection tells the switch a connection terminated, freeing its
// ConnTable entry and possibly retiring a pool version.
func (s *Switch) EndConnection(now Time, t FiveTuple) {
	defer s.poke()
	if s.multi != nil {
		s.multi.EndConnection(now, t)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cp.EndConnection(now, t)
}

// Advance runs background work (learning-filter drains, CPU insertions,
// update state transitions, aging) due at or before now.
func (s *Switch) Advance(now Time) {
	if s.multi != nil {
		s.multi.Advance(now)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cp.Advance(now)
}

// NextEventTime returns when the switch next has background work due.
func (s *Switch) NextEventTime() (Time, bool) {
	if s.multi != nil {
		return s.multi.NextEventTime()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.NextEventTime()
}

// lockedManager adapts the switch's locked facade as a health.PoolManager.
type lockedManager struct{ s *Switch }

func (m lockedManager) AddDIP(now Time, vip VIP, dip DIP) error {
	return m.s.AddDIP(now, vip, dip)
}

func (m lockedManager) RemoveDIP(now Time, vip VIP, dip DIP) error {
	return m.s.RemoveDIP(now, vip, dip)
}

// Stats returns combined counters. On a multi-pipe switch every field is
// the chip-level aggregate over the pipes (sums; MaxInsertQueue is the
// per-pipe maximum).
func (s *Switch) Stats() Stats {
	if s.multi != nil {
		agg := s.multi.Stats()
		return Stats{
			Dataplane:    agg.Dataplane,
			Controlplane: agg.Controlplane,
			Connections:  agg.Connections,
			MemoryBytes:  agg.MemoryBytes,
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dataplane:    s.dp.Stats(),
		Controlplane: s.cp.Metrics(),
		Connections:  s.cp.TrackedConns(),
		MemoryBytes:  s.dp.Memory().Total(),
	}
}

// PerPipe returns each pipe's individual counters in pipe order. A
// single-pipe switch reports one entry, so callers inspect per-pipe state
// the same way regardless of the pipe count (no Engine() != nil branch).
func (s *Switch) PerPipe() []PipeStats {
	if s.multi != nil {
		return s.multi.PerPipe()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return []PipeStats{{
		Pipe:         0,
		Dataplane:    s.dp.Stats(),
		Controlplane: s.cp.Metrics(),
		Connections:  s.cp.TrackedConns(),
		MemoryBytes:  s.dp.Memory().Total(),
		Packets:      s.dp.Stats().Packets,
	}}
}
