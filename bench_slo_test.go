package silkroad

import (
	"testing"
	"time"

	"repro/internal/netproto"
)

// sloBenchSwitch builds the overhead workload's switch: four pipes, a
// telemetry registry (both sides pay for instrumentation — the comparison
// isolates the evaluator), and optionally an armed SLO evaluator ticking
// every virtual millisecond.
func sloBenchSwitch(tb testing.TB, armed bool) *Switch {
	tb.Helper()
	cfg := Defaults(1_000_000)
	cfg.Pipes = 4
	cfg.Clock = NewManualClock(0)
	cfg.Telemetry = NewTelemetry()
	if armed {
		// Denser than the production 1s default so the evaluator ticks
		// repeatedly inside the short measured region.
		cfg.SLO = &SLOConfig{Interval: 100 * Microsecond}
	}
	sw, err := NewSwitch(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sw.AddVIP(0, testVIP(), Pool("10.0.0.1:20", "10.0.0.2:20", "10.0.0.3:20")); err != nil {
		tb.Fatal(err)
	}
	return sw
}

const (
	sloBenchConns = 8192
	sloBenchBatch = 256
)

// sloBenchPrime opens the established working set and drains insertions.
func sloBenchPrime(sw *Switch) {
	batch := make([]*Packet, sloBenchBatch)
	for base := 0; base < sloBenchConns; base += sloBenchBatch {
		for j := range batch {
			batch[j] = clientPkt(base+j, netproto.FlagSYN)
		}
		sw.ProcessBatch(0, batch)
	}
	sw.Advance(Time(10 * Millisecond))
}

// sloBenchMeasure runs established-traffic passes and returns wallclock
// packets per second. Virtual time steps a microsecond per batch with a
// per-batch AdvanceTo (the scheduler drives background sources, the SLO
// evaluator among them), and the cursor threads across repetitions so
// virtual time keeps moving forward.
func sloBenchMeasure(sw *Switch, passes int, now *Time) float64 {
	batch := make([]*Packet, sloBenchBatch)
	before := sw.Stats().Dataplane.Packets
	start := time.Now()
	for p := 0; p < passes; p++ {
		for base := 0; base < sloBenchConns; base += sloBenchBatch {
			for j := range batch {
				batch[j] = clientPkt(base+j, netproto.FlagACK)
			}
			sw.ProcessBatch(*now, batch)
			*now = now.Add(Microsecond)
			sw.AdvanceTo(*now)
		}
	}
	elapsed := time.Since(start).Seconds()
	done := sw.Stats().Dataplane.Packets - before
	if elapsed <= 0 || done == 0 {
		return 0
	}
	return float64(done) / elapsed
}

// TestSLOArmedOverheadGate is the issue's acceptance bar: arming the SLO
// evaluator costs the packet path under 2%. Armed and disarmed switches
// run the identical workload in interleaved repetitions; each side keeps
// its fastest repetition (shared-host interference only ever slows a rep
// down), and the gate compares the bests with the 2% bar.
func TestSLOArmedOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("wallclock gate; skipped with -short")
	}
	swOff := sloBenchSwitch(t, false)
	defer swOff.Close()
	swOn := sloBenchSwitch(t, true)
	defer swOn.Close()
	sloBenchPrime(swOff)
	sloBenchPrime(swOn)

	const reps, passes = 5, 8
	var bestOff, bestOn float64
	nowOff, nowOn := Time(20*Millisecond), Time(20*Millisecond)
	evalsBefore := swOn.SLO().Report().Evals
	for r := 0; r < reps; r++ {
		if pps := sloBenchMeasure(swOff, passes, &nowOff); pps > bestOff {
			bestOff = pps
		}
		if pps := sloBenchMeasure(swOn, passes, &nowOn); pps > bestOn {
			bestOn = pps
		}
	}
	if bestOff == 0 || bestOn == 0 {
		t.Fatalf("no throughput measured (off=%v on=%v)", bestOff, bestOn)
	}
	ratio := bestOn / bestOff
	t.Logf("disarmed %.0f pps, armed %.0f pps, ratio %.4f", bestOff, bestOn, ratio)
	if evals := swOn.SLO().Report().Evals; evals <= evalsBefore {
		t.Fatal("armed evaluator never ticked inside the measured region")
	}
	if ratio < 0.98 {
		t.Errorf("armed SLO evaluator costs %.1f%% throughput, want < 2%%", 100*(1-ratio))
	}
}

// BenchmarkSLOOverhead reports the same comparison as standard Go
// benchmarks for manual runs.
func BenchmarkSLOOverhead(b *testing.B) {
	for _, side := range []struct {
		name  string
		armed bool
	}{{"disarmed", false}, {"armed", true}} {
		b.Run(side.name, func(b *testing.B) {
			sw := sloBenchSwitch(b, side.armed)
			defer sw.Close()
			sloBenchPrime(sw)
			batch := make([]*Packet, sloBenchBatch)
			now := Time(20 * Millisecond)
			b.ReportAllocs()
			b.SetBytes(sloBenchBatch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := (i * sloBenchBatch) % sloBenchConns
				for j := range batch {
					batch[j] = clientPkt((base+j)%sloBenchConns, netproto.FlagACK)
				}
				sw.ProcessBatch(now, batch)
				now = now.Add(Microsecond)
				sw.AdvanceTo(now)
			}
		})
	}
}
